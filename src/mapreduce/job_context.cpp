#include "mapreduce/job_context.hpp"

#include "mapreduce/map_pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <stdexcept>
#include <thread>

#include "scifile/storage.hpp"

namespace sidr::mr {

void validateJobSpec(const JobSpec& spec) {
  if (!spec.readerFactory || !spec.mapperFactory || !spec.reducerFactory) {
    throw std::invalid_argument("Engine: missing task factory");
  }
  if (spec.partitioner == nullptr) {
    throw std::invalid_argument("Engine: missing partitioner");
  }
  if (spec.numReducers == 0) {
    throw std::invalid_argument("Engine: numReducers must be > 0");
  }
  if (!std::isfinite(spec.weight) || spec.weight <= 0.0) {
    throw std::invalid_argument("Engine: weight must be finite and > 0");
  }
  if (spec.keySpace.rank() > 0 && !spec.keySpace.isValidShape()) {
    throw std::invalid_argument(
        "Engine: keySpace must be a valid shape (all extents > 0) or empty");
  }
  if (spec.mode == ExecutionMode::kSidr &&
      spec.reduceDeps.size() != spec.numReducers) {
    throw std::invalid_argument(
        "Engine: SIDR mode requires one dependency set per keyblock");
  }
  for (const auto& ds : spec.reduceDeps) {
    for (std::uint32_t s : ds) {
      if (s >= spec.splits.size()) {
        throw std::invalid_argument("Engine: dependency references bad split");
      }
    }
  }
  if (!spec.reducePriority.empty()) {
    if (spec.reducePriority.size() != spec.numReducers) {
      throw std::invalid_argument(
          "Engine: priority list must cover all reduces");
    }
    // An out-of-range or duplicate keyblock id would corrupt the slot
    // accounting in scheduleReducesLocked (out-of-bounds write /
    // double-counted scheduledActive).
    std::vector<bool> seen(spec.numReducers, false);
    for (std::uint32_t kb : spec.reducePriority) {
      if (kb >= spec.numReducers) {
        throw std::invalid_argument(
            "Engine: priority list names keyblock " + std::to_string(kb) +
            " but job has " + std::to_string(spec.numReducers) + " reduces");
      }
      if (seen[kb]) {
        throw std::invalid_argument(
            "Engine: priority list repeats keyblock " + std::to_string(kb));
      }
      seen[kb] = true;
    }
  }
  if (!spec.expectedRepresents.empty() &&
      spec.expectedRepresents.size() != spec.numReducers) {
    throw std::invalid_argument(
        "Engine: expectedRepresents must cover all reduces when non-empty");
  }
  if (spec.faultPlan.maxAttempts == 0) {
    throw std::invalid_argument("Engine: FaultPlan::maxAttempts must be > 0");
  }
  if (spec.spillWriters == 0) {
    throw std::invalid_argument("Engine: spillWriters must be > 0");
  }
  if (spec.memoryBudgetBytes > 0) {
    if (spec.spillDirectory.empty()) {
      throw std::invalid_argument(
          "Engine: memoryBudgetBytes requires a spillDirectory to evict into");
    }
    if (spec.memoryBudgetBytes < SegmentPagePool::kPageBytes) {
      throw std::invalid_argument(
          "Engine: memoryBudgetBytes must cover at least one page (" +
          std::to_string(SegmentPagePool::kPageBytes) + " bytes)");
    }
    if (spec.mergeWindowBytes == 0) {
      throw std::invalid_argument(
          "Engine: mergeWindowBytes must be > 0 when a memory budget is set");
    }
  }
  if (spec.compressSpill) {
    if (spec.spillDirectory.empty()) {
      throw std::invalid_argument(
          "Engine: compressSpill requires a spillDirectory");
    }
    if (spec.keySpace.rank() == 0) {
      throw std::invalid_argument(
          "Engine: compressSpill requires a keySpace (the codec delta-encodes "
          "linear keys)");
    }
  }
  for (const FaultSpec& f : spec.faultPlan.faults) {
    if (f.attempt == 0) {
      throw std::invalid_argument("Engine: fault attempt ids are 1-based");
    }
    const std::size_t bound =
        f.kind == TaskKind::kMap ? spec.splits.size() : spec.numReducers;
    if (f.id >= bound) {
      throw std::invalid_argument(
          std::string("Engine: fault plan names ") + taskKindName(f.kind) +
          " task " + std::to_string(f.id) + " out of range");
    }
  }
  if (spec.faultPlan.maxFetchAttempts == 0) {
    throw std::invalid_argument(
        "Engine: FaultPlan::maxFetchAttempts must be > 0");
  }
  for (const FetchFaultSpec& f : spec.faultPlan.fetchFaults) {
    if (f.fetchAttempt == 0) {
      throw std::invalid_argument("Engine: fetch fault attempt ids are 1-based");
    }
    if (f.keyblock >= spec.numReducers) {
      throw std::invalid_argument(
          "Engine: fetch fault names keyblock " + std::to_string(f.keyblock) +
          " out of range");
    }
  }
  bool hasSecondaryFactories =
      static_cast<bool>(spec.secondaryReaderFactory) &&
      static_cast<bool>(spec.secondaryMapperFactory);
  if (static_cast<bool>(spec.secondaryReaderFactory) !=
      static_cast<bool>(spec.secondaryMapperFactory)) {
    throw std::invalid_argument(
        "Engine: secondaryReaderFactory and secondaryMapperFactory must be "
        "set together");
  }
  bool hasSecondarySplits = false;
  for (const InputSplit& s : spec.splits) {
    if (s.input > 1) {
      throw std::invalid_argument(
          "Engine: InputSplit::input must be 0 or 1 (split " +
          std::to_string(s.id) + ")");
    }
    if (s.input == 1) hasSecondarySplits = true;
  }
  if (hasSecondarySplits && !hasSecondaryFactories) {
    throw std::invalid_argument(
        "Engine: splits reference input 1 but no secondary factories are set");
  }
  if (hasSecondaryFactories && !hasSecondarySplits) {
    throw std::invalid_argument(
        "Engine: secondary factories set but no split references input 1");
  }
  if (spec.transportConnections == 0) {
    throw std::invalid_argument("Engine: transportConnections must be > 0");
  }
  if (spec.transportTimeoutMillis == 0) {
    throw std::invalid_argument("Engine: transportTimeoutMillis must be > 0");
  }
  if (spec.transport == ShuffleTransportKind::kFileServed &&
      (spec.spillDirectory.empty() || spec.memoryBudgetBytes > 0)) {
    throw std::invalid_argument(
        "Engine: the file-served transport requires eager spill "
        "(spillDirectory set, no memory budget) — it serves committed "
        "job<id>/ segment files");
  }
}

namespace {

/// Collects a reduce task's output records (arrive in key order because
/// the merger iterates ascending).
class VectorReduceContext final : public ReduceContext {
 public:
  void emit(const nd::Coord& key, Value value) override {
    records_.push_back(KeyValue{key, std::move(value), 1});
  }

  std::vector<KeyValue> take() { return std::move(records_); }

 private:
  std::vector<KeyValue> records_;
};

}  // namespace

JobContext::JobContext(JobSpec s, SpillWriterPool* sharedPool)
    : spec(std::move(s)), sharedSpillPool(sharedPool) {}

void JobContext::attachCachedSegments(
    std::vector<std::vector<std::shared_ptr<const Segment>>> warm) {
  cachedWarm = std::move(warm);
  cacheServed = true;
}

void JobContext::enableCacheDonation() { donateToCache = true; }

std::string JobContext::segmentPath(std::uint32_t m, std::uint32_t kb) const {
  return jobDir + "/" + segmentFileName(m, kb);
}

/// Writes one serialized segment to the attempt's TEMPORARY file.
/// Nothing becomes visible under the committed name until the whole
/// attempt commits via commitSegmentFile (atomic rename), so a
/// recovery re-run never truncates a file a concurrent lock-free
/// reduce fetch may be mid-read on.
void JobContext::spillSegmentAttempt(std::uint32_t m, std::uint32_t kb,
                                     std::uint32_t attempt,
                                     std::span<const std::byte> bytes) const {
  sci::FileStorage file(jobDir + "/" + segmentAttemptFileName(m, kb, attempt),
                        sci::FileStorage::Mode::kCreate);
  file.writeAt(0, bytes);
  file.flush();
}

/// Reads ONLY the header of a spilled segment — the cheap
/// annotation-tally access of paper section 3.2.1.
SegmentHeader JobContext::peekSpilledHeader(std::uint32_t m,
                                            std::uint32_t kb) const {
  sci::FileStorage file(segmentPath(m, kb),
                        sci::FileStorage::Mode::kOpenReadOnly);
  std::array<std::byte, Segment::kHeaderBytes> head{};
  file.readAt(0, head);
  return Segment::peekHeader(head);
}

/// Reads and decodes a spilled segment; adds the bytes moved to
/// `bytesFetched` (the shuffleBytes accounting). Compressed spill
/// files decode through the streaming reader (the only decoder that
/// understands the delta/varint wire form); the window is irrelevant
/// here since the whole segment materializes anyway.
Segment JobContext::loadSpilledSegment(std::uint32_t m, std::uint32_t kb,
                                       std::uint64_t& bytesFetched) const {
  if (spec.compressSpill) {
    SegmentStream stream(segmentPath(m, kb),
                         std::max<std::size_t>(spec.mergeWindowBytes, 1),
                         /*compressed=*/true, spec.keySpace);
    Segment seg = Segment::fromStream(stream);
    bytesFetched += stream.bytesRead();
    return seg;
  }
  sci::FileStorage file(segmentPath(m, kb),
                        sci::FileStorage::Mode::kOpenReadOnly);
  std::vector<std::byte> bytes(file.size());
  file.readAt(0, bytes);
  bytesFetched += bytes.size();
  return Segment::deserialize(bytes);
}

// Marks a map schedulable (SIDR: because a scheduled reduce depends on
// it; stock: at job start). Caller holds mtx.
void JobContext::markMapEligible(std::uint32_t m) {
  if (mapDone[m] || mapQueued[m] || runningMapSet[m]) return;
  eligibleMaps.push_back(m);
  mapQueued[m] = true;
  mapEverEligible[m] = true;
}

// Schedules reduce tasks into free slots, in priority order; SIDR only.
// Caller holds mtx.
void JobContext::scheduleReducesLocked() {
  while (scheduledActive < spec.reduceSlots && nextPriorityPos < numReduces) {
    std::uint32_t kb = priorityOrder[nextPriorityPos++];
    reduceScheduled[kb] = true;
    ++scheduledActive;
    // Scheduling a reduce walks the task tree and marks its dependent
    // maps schedulable (paper section 3.3).
    for (std::uint32_t m : deps[kb]) markMapEligible(m);
    if (remainingDeps[kb] == 0 && !reduceRunnableFlag[kb] &&
        evictingCount[kb] == 0) {
      reduceRunnableFlag[kb] = true;
      runnableReduces.push_back(kb);
    }
  }
}

void JobContext::start() {
  numMaps = static_cast<std::uint32_t>(spec.splits.size());
  numReduces = spec.numReducers;
  if (spillEnabled()) {
    jobDir = spec.spillDirectory + "/" + jobSpillDirName(spec.jobId);
    std::filesystem::create_directories(jobDir);
    if (sharedSpillPool != nullptr) {
      spillPool = sharedSpillPool;
    } else if (spec.spillWriters > 1 && numReduces > 0) {
      // No point running more writers than keyblocks: each item covers
      // one (map, keyblock) file and a map attempt submits numReduces
      // of them at once.
      ownedSpillPool = std::make_unique<SpillWriterPool>(
          std::min(spec.spillWriters, numReduces));
      spillPool = ownedSpillPool.get();
    }
  }
  mapQueued.assign(numMaps, false);
  mapEverEligible.assign(numMaps, false);
  mapDone.assign(numMaps, false);
  runningMapSet.assign(numMaps, false);
  mapAttempts.assign(numMaps, 0);
  segments.assign(numMaps,
                  std::vector<std::shared_ptr<const Segment>>(numReduces));
  segAvail.assign(numMaps, std::vector<bool>(numReduces, false));
  // The page pool exists in every mode (budget 0 = unlimited): it is
  // also the job-wide peak-residency meter.
  pagePool = std::make_unique<SegmentPagePool>(spec.memoryBudgetBytes);
  segCharge.assign(numMaps, std::vector<std::uint64_t>(numReduces, 0));
  segEvicting.assign(numMaps, std::vector<bool>(numReduces, false));
  evictingCount.assign(numReduces, 0);
  publishedAttempt.assign(numMaps, 0);
  reduceScheduled.assign(numReduces, false);
  reduceRunnableFlag.assign(numReduces, false);
  reduceDone.assign(numReduces, false);
  reduceAttempts.assign(numReduces, 0);
  result.outputs.resize(numReduces);
  result.recordsPerReducer.assign(numReduces, 0);

  // Resolve dependency sets: stock mode depends on every split (the
  // global barrier); SIDR uses the provided I_l sets.
  deps.resize(numReduces);
  for (std::uint32_t kb = 0; kb < numReduces; ++kb) {
    if (isSidr()) {
      deps[kb] = spec.reduceDeps[kb];
    } else {
      deps[kb].resize(numMaps);
      for (std::uint32_t m = 0; m < numMaps; ++m) deps[kb][m] = m;
    }
  }
  mapToReduces.assign(numMaps, {});
  remainingDeps.assign(numReduces, 0);
  for (std::uint32_t kb = 0; kb < numReduces; ++kb) {
    remainingDeps[kb] = static_cast<std::uint32_t>(deps[kb].size());
    for (std::uint32_t m : deps[kb]) mapToReduces[m].push_back(kb);
  }

  priorityOrder.resize(numReduces);
  if (spec.reducePriority.empty()) {
    for (std::uint32_t kb = 0; kb < numReduces; ++kb) priorityOrder[kb] = kb;
  } else {
    priorityOrder = spec.reducePriority;
  }
  posOf.assign(numReduces, 0);
  for (std::uint32_t i = 0; i < numReduces; ++i) posOf[priorityOrder[i]] = i;

  startTime = Clock::now();
  if (spec.recordTrace) {
    // Shares the event-log epoch, so span timestamps and TaskEvent
    // seconds are directly comparable.
    recorder = std::make_unique<obs::TraceRecorder>(startTime);
  }
  if (donateToCache) {
    stagedDonation.assign(
        numMaps, std::vector<std::shared_ptr<const Segment>>(numReduces));
  }
  {
    std::scoped_lock lock(mtx);
    // Warm start: publish the attached cache handles BEFORE scheduling,
    // so both modes' scheduling code below observes every dependency
    // already satisfied and pushes reduces runnable immediately.
    if (cacheServed) publishCachedSegmentsLocked();
    if (isSidr()) {
      // SIDR inverts scheduling: reduces first, maps become eligible as
      // a side effect.
      scheduleReducesLocked();
    } else {
      // Stock: all maps schedulable at once; reduces are all "scheduled"
      // (they hold slots and wait at the barrier).
      for (std::uint32_t m = 0; m < numMaps; ++m) markMapEligible(m);
      for (std::uint32_t kb = 0; kb < numReduces; ++kb) {
        reduceScheduled[kb] = true;
        if (remainingDeps[kb] == 0) {  // degenerate zero-split job
          reduceRunnableFlag[kb] = true;
          runnableReduces.push_back(kb);
        }
      }
    }
  }
  // Warm publication is the moment resident bytes grow for a budgeted
  // job — shed pressure exactly as a committing map would (no locks
  // held; selection and finalize take mtx internally).
  if (cacheServed && budgetEnabled()) maybePressureSpill();

  // Shuffle data plane, last: start() completes before any claim, so
  // the (possible) server threads never observe half-sized state. A
  // cache-served run always shuffles in-process — its warm segments
  // are resident handles with no committed files behind them.
  transportKind = cacheServed
                      ? ShuffleTransportKind::kInProcess
                      : spec.transport.value_or(ShuffleTransportKind::kInProcess);
  TransportOptions topts;
  topts.connections = spec.transportConnections;
  topts.timeoutMillis = spec.transportTimeoutMillis;
  topts.faultPlan = &spec.faultPlan;
  transport = makeShuffleTransport(transportKind, *this, topts);
}

/// Publishes the full warm segment matrix as this job's committed map
/// output: one kCacheFetch span per map and the SAME per-keyblock
/// kRenameCommit spans (with count annotations) a real map attempt
/// emits, so the trace invariants — commit-before-reduce gating, fetch
/// tallies vs commits — hold verbatim while the attempt-span count pins
/// "zero map tasks ran". publishedAttempt is 1: a budget eviction of a
/// warm slot names its file exactly like a first-attempt commit.
/// Caller holds mtx.
void JobContext::publishCachedSegmentsLocked() {
  obs::ScopedRecorder scoped(recorder.get());
  for (std::uint32_t m = 0; m < numMaps; ++m) {
    obs::SpanScope fetchSpan(obs::Phase::kCacheFetch, obs::TaskSide::kMap, m,
                             1);
    std::uint64_t mapRecords = 0;
    std::uint64_t mapRepresents = 0;
    std::uint64_t mapBytes = 0;
    for (std::uint32_t kb = 0; kb < numReduces; ++kb) {
      std::shared_ptr<const Segment>& seg = cachedWarm[m][kb];
      const SegmentHeader& h = seg->header();
      mapRecords += h.numRecords;
      mapRepresents += h.represents;
      const std::uint64_t bytes = seg->residentBytes();
      mapBytes += bytes;
      {
        obs::SpanScope commit(obs::Phase::kRenameCommit, obs::TaskSide::kMap,
                              m, 1, kb);
        commit.setRecords(h.numRecords);
        commit.setRepresents(h.represents);
        if (bytes > 0) segCharge[m][kb] = pagePool->charge(bytes);
        segments[m][kb] = std::move(seg);
        segAvail[m][kb] = true;
      }
    }
    fetchSpan.setBytes(mapBytes);
    fetchSpan.setRecords(mapRecords);
    fetchSpan.setRepresents(mapRepresents);
    cacheBytesServed += mapBytes;
    publishedAttempt[m] = 1;
    mapDone[m] = true;
  }
  cachedWarm.clear();
  for (std::uint32_t kb = 0; kb < numReduces; ++kb) remainingDeps[kb] = 0;
  result.cacheServedMaps = numMaps;
  result.cacheBytesServed = cacheBytesServed;
}

std::optional<ClaimedTask> JobContext::tryClaimLocked(bool reduceOnly) {
  if (terminalLocked()) return std::nullopt;
  // Reduce-first: a runnable reduce has its data dependencies met and
  // holds a slot already.
  if (!runnableReduces.empty() && runningReduces < spec.reduceSlots) {
    std::uint32_t kb = runnableReduces.front();
    runnableReduces.pop_front();
    ++runningReduces;
    ++activeClaims;
    return ClaimedTask{TaskKind::kReduce, kb};
  }
  if (reduceOnly) return std::nullopt;
  if (!eligibleMaps.empty() && runningMaps < spec.mapSlots) {
    std::uint32_t m = eligibleMaps.front();
    eligibleMaps.pop_front();
    mapQueued[m] = false;
    runningMapSet[m] = true;
    ++runningMaps;
    ++activeClaims;
    return ClaimedTask{TaskKind::kMap, m};
  }
  return std::nullopt;
}

std::optional<ClaimedTask> JobContext::tryClaimTask() {
  std::scoped_lock lock(mtx);
  return tryClaimLocked(/*reduceOnly=*/false);
}

std::optional<ClaimedTask> JobContext::tryClaimReduce() {
  std::scoped_lock lock(mtx);
  return tryClaimLocked(/*reduceOnly=*/true);
}

bool JobContext::hasClaimableTask() {
  std::scoped_lock lock(mtx);
  if (terminalLocked()) return false;
  return (!runnableReduces.empty() && runningReduces < spec.reduceSlots) ||
         (!eligibleMaps.empty() && runningMaps < spec.mapSlots);
}

void JobContext::runClaimedTask(const ClaimedTask& task) {
  // Install this JOB's recorder for the task's duration: service worker
  // threads interleave tasks from many jobs, so the recorder travels
  // with the claim, not the thread. Scoped so the recorder uninstalls
  // before the claim is released below — the claim is what keeps this
  // context alive in a service, and task bodies run job-owned code (the
  // trailing pressure-spill pass, recorder flushes) after their slot
  // counters already dropped.
  {
    obs::ScopedRecorder scoped(recorder.get());
    if (task.kind == TaskKind::kReduce) {
      const std::uint32_t kb = task.id;
      try {
        runReduce(kb);
      } catch (...) {
        std::scoped_lock elock(mtx);
        if (!firstError) firstError = std::current_exception();
        --runningReduces;
        // Release the SIDR slot this reduce held; without this a failed
        // reduce counts against scheduledActive forever and wedges slot
        // accounting.
        if (isSidr() && reduceScheduled[kb] && !reduceDone[kb]) {
          reduceScheduled[kb] = false;
          --scheduledActive;
          scheduleReducesLocked();
        }
        cv.notify_all();
      }
    } else {
      const std::uint32_t m = task.id;
      try {
        runMap(m);
      } catch (...) {
        std::scoped_lock elock(mtx);
        if (!firstError) firstError = std::current_exception();
        runningMapSet[m] = false;
        --runningMaps;
        cv.notify_all();
      }
    }
  }
  // Claim released: only now may the service observe this context as
  // quiescent and destroy it. Everything the task touches — page pool,
  // recorder, segments — must be reached before this point.
  std::scoped_lock lock(mtx);
  --activeClaims;
  cv.notify_all();
}

bool JobContext::quiescentTerminal() {
  std::scoped_lock lock(mtx);
  // activeClaims (not just the slot counters) gates quiescence: a task
  // body decrements its slot counter under mtx before running trailing
  // job-owned work (pressure spill, recorder uninstall), and the claim
  // is only released after ALL of it — so a context with a live claim
  // must never be destroyed.
  return terminalLocked() && runningMaps == 0 && runningReduces == 0 &&
         activeClaims == 0;
}

void JobContext::requestCancel() {
  std::scoped_lock lock(mtx);
  cancelRequested = true;
  cv.notify_all();
}

std::vector<ReduceOutput> JobContext::partialOutputs() {
  std::scoped_lock lock(mtx);
  std::vector<ReduceOutput> done;
  for (std::uint32_t kb = 0;
       kb < reduceDone.size() && kb < result.outputs.size(); ++kb) {
    if (reduceDone[kb]) done.push_back(result.outputs[kb]);
  }
  return done;
}

void JobContext::workerLoop() {
  std::unique_lock lock(mtx);
  while (true) {
    if (terminalLocked()) return;
    std::optional<ClaimedTask> task = tryClaimLocked(/*reduceOnly=*/false);
    if (task.has_value()) {
      lock.unlock();
      runClaimedTask(*task);
      lock.lock();
      continue;
    }
    cv.wait(lock);
  }
}

JobOutcome JobContext::finalize() {
  // Tear down the shuffle data plane first: the job is quiescent (no
  // fetch in flight), and joining any transport server threads here
  // means nothing can call back into the segment store below.
  if (transport != nullptr) {
    transport->stop();
    transport.reset();
  }
  // Join the owned spill pool before collecting: pool threads record
  // spans too, and destruction guarantees their logs are final. (A
  // shared pool needs no join here: every item this job submitted
  // completed before its map attempt did — the batch barrier — and the
  // job is quiescent.)
  ownedSpillPool.reset();
  spillPool = nullptr;

  // The job is quiescent, but partialOutputs() snapshots may still
  // arrive from JobHandle readers; holding mtx serializes them against
  // the result move below.
  std::scoped_lock lock(mtx);
  JobOutcome outcome;
  const bool succeeded = completedReduces == numReduces && !firstError;
  outcome.error = firstError;
  outcome.cancelled = !succeeded && !firstError && cancelRequested;
  outcome.completedKeyblocks.assign(reduceDone.begin(), reduceDone.end());

  result.peakResidentSegmentBytes = pagePool->peakResidentBytes();
  result.pressureSpillEvents = pressureSpills.load(std::memory_order_relaxed);
  result.spillCompressedBytes =
      compressedSpillBytes.load(std::memory_order_relaxed);
  result.totalSeconds = now();
  result.firstResultSeconds = result.totalSeconds;
  for (std::uint32_t kb = 0; kb < numReduces; ++kb) {
    if (!reduceDone[kb]) continue;
    result.firstResultSeconds =
        std::min(result.firstResultSeconds, result.outputs[kb].availableAt);
  }
  if (recorder != nullptr) {
    result.trace = recorder->collect();
    // Absorb the scattered JobResult scalars and the sort totals into
    // the counter registry so consumers read one uniform surface.
    obs::Trace& t = result.trace;
    t.addCounter("shuffle.connections", result.shuffleConnections);
    t.addCounter("shuffle.nonEmptyConnections", result.nonEmptyConnections);
    t.addCounter("shuffle.bytes", result.shuffleBytes);
    t.addCounter("shuffle.fetchMicros",
                 static_cast<std::uint64_t>(result.shuffleFetchSeconds * 1e6));
    t.addCounter("job.annotationViolations", result.annotationViolations);
    t.addCounter("job.mapsReExecuted", result.mapsReExecuted);
    t.addCounter("job.mapFailures", result.mapFailures);
    t.addCounter("job.reduceFailures", result.reduceFailures);
    t.addCounter("sort.sortedSkips", result.sortTotals.sortedSkips);
    t.addCounter("sort.comparisonSorts", result.sortTotals.comparisonSorts);
    t.addCounter("sort.radixSorts", result.sortTotals.radixSorts);
    t.addCounter("sort.radixPasses", result.sortTotals.radixPasses);
    t.addCounter("sort.radixPassesSkipped",
                 result.sortTotals.radixPassesSkipped);
    t.addCounter("mem.peakResidentSegmentBytes",
                 result.peakResidentSegmentBytes);
    t.addCounter("mem.pressureSpillEvents", result.pressureSpillEvents);
    t.addCounter("mem.spillCompressedBytes", result.spillCompressedBytes);
    t.addCounter("cache.servedMaps", result.cacheServedMaps);
    t.addCounter("cache.bytesServed", result.cacheBytesServed);
    t.addCounter("net.wireBytes", result.transportTotals.wireBytes);
    t.addCounter("net.framesSent", result.transportTotals.framesSent);
    t.addCounter("net.framesReceived", result.transportTotals.framesReceived);
    t.addCounter("net.connectionsOpened",
                 result.transportTotals.connectionsOpened);
    t.addCounter("net.connectionsReused",
                 result.transportTotals.connectionsReused);
    t.addCounter("net.fetchRetries", result.transportTotals.fetchRetries);
    t.addCounter("net.wastedWireBytes",
                 result.transportTotals.wastedWireBytes);
    t.addCounter("skew.sampledRecords", spec.skewStats.sampledRecords);
    t.addCounter("skew.splitKeyblocks", spec.skewStats.splitKeyblocks);
    t.addCounter("skew.coalescedKeyblocks",
                 spec.skewStats.coalescedKeyblocks);
    t.addCounter("skew.refined", spec.skewStats.refined ? 1 : 0);
  }
  result.trace.jobId = spec.jobId;

  // Cache donation: decided HERE, after the outcome is known, so a
  // cancelled or failed job can never donate partially-committed output
  // — the race is impossible by construction, not guarded against.
  if (donateToCache && succeeded && !cacheServed && numMaps > 0 &&
      spec.mapFingerprint.has_value()) {
    SegmentCacheDonation d;
    d.present = true;
    d.key = *spec.mapFingerprint;
    d.numMaps = numMaps;
    d.numReduces = numReduces;
    d.keySpace = spec.keySpace;
    if (eagerSpill()) {
      // File-backed donation: the committed `job<id>/` files ARE the
      // entry (successful jobs always keep their namespace); the cache
      // reloads them through the same codec path a reduce fetch uses.
      d.compressed = spec.compressSpill;
      d.paths.assign(numMaps, std::vector<std::string>(numReduces));
      for (std::uint32_t m = 0; m < numMaps; ++m) {
        for (std::uint32_t kb = 0; kb < numReduces; ++kb) {
          d.paths[m][kb] = segmentPath(m, kb);
        }
      }
    } else {
      d.segments = std::move(stagedDonation);
      // Every slot must have been staged exactly once (fault-free donor
      // jobs run each map once). A hole means the donation contract was
      // violated somewhere — withhold rather than cache a partial run.
      for (const auto& row : d.segments) {
        for (const auto& seg : row) {
          if (seg == nullptr) d.present = false;
        }
      }
    }
    if (d.present) outcome.donation = std::move(d);
  }
  stagedDonation.clear();

  // Non-success cleanup: remove the whole spill namespace — committed
  // segments AND any orphaned attempt temporaries — so a failed or
  // cancelled job strands nothing. keepSpillOnFailure opts out for
  // post-mortem debugging; successful jobs always keep their committed
  // files (callers may read them).
  if (!succeeded && spillEnabled() && !spec.keepSpillOnFailure) {
    std::error_code ec;  // swallowed: cleanup is advisory
    std::filesystem::remove_all(jobDir, ec);
  }

  outcome.result = std::move(result);
  return outcome;
}

void JobContext::runMap(std::uint32_t m) {
  std::uint32_t attempt;
  {
    std::scoped_lock lock(mtx);
    attempt = ++mapAttempts[m];
    // Any execution beyond the first attempt is recovery cost, whether
    // it re-runs after a recovery reset or retries a failed attempt.
    if (attempt > 1) ++result.mapsReExecuted;
  }
  // The attempt span brackets the whole execution; being the first
  // local, it is destroyed last and therefore contains every phase span
  // below — including the publication spans recorded under the mutex
  // after tEnd (well-nestedness is structural, not bookkept).
  obs::SpanScope attemptSpan(obs::Phase::kTaskAttempt, obs::TaskSide::kMap, m,
                             attempt);
  double tStart = now();
  // Two-input jobs (structural join) route secondary-input splits
  // through their own reader and mapper; split ids, routing validation
  // and recovery below are input-agnostic.
  const bool secondary = spec.splits[m].input == 1;
  auto mapper =
      secondary ? spec.secondaryMapperFactory() : spec.mapperFactory();
  const RecordReaderFactory& readerFactory =
      secondary ? spec.secondaryReaderFactory : spec.readerFactory;
  std::unique_ptr<Combiner> combiner =
      spec.combinerFactory ? spec.combinerFactory() : nullptr;
  // Batched read → map → route → sort/combine lives in the shared map
  // pipeline (map_pipeline.cpp); with spec.keySpace set it runs the
  // linearized fast path, otherwise the per-record lexicographic one.
  // The sink scopes every sort counter the pipeline touches to THIS
  // attempt, so the counts fold into the owning job's totals below no
  // matter which jobs share the worker thread.
  SortStats taskSort;
  std::vector<Segment> produced;
  {
    ScopedSortStatsSink statsSink(&taskSort);
    produced = runMapPipeline(spec.splits[m], m, readerFactory, *mapper,
                              *spec.partitioner, numReduces, combiner.get(),
                              spec.keySpace, pagePool.get());
  }

  // Verify routing against the declared dependency sets (a record
  // landing in a keyblock that does not list this split is a
  // partitioner/dependency bug). Validated for ALL keyblocks before any
  // spill job is queued, so a violation can never throw while pool jobs
  // still reference this frame's segments.
  for (std::uint32_t kb = 0; isSidr() && kb < numReduces; ++kb) {
    if (produced[kb].empty()) continue;
    const auto& dl = deps[kb];
    if (std::find(dl.begin(), dl.end(), m) == dl.end()) {
      throw std::logic_error(
          "SIDR routing violation: map " + std::to_string(m) +
          " produced data for undeclared keyblock " + std::to_string(kb));
    }
  }
  // In-memory mode never serializes: the segment itself becomes the
  // published immutable handle. Spill mode encodes with the bulk codec
  // and writes a map-output file per keyblock — on the spill-writer
  // pool when one is configured, so keyblocks overlap; each pool job
  // owns its keyblock's segment exclusively (lazy materialization
  // included), and the batch barrier below orders every write before
  // the fault check and the commit phase, exactly as the sequential
  // path does.
  std::uint64_t producedRecords = 0;
  std::uint64_t producedRepresents = 0;
  for (const Segment& seg : produced) {
    producedRecords += seg.header().numRecords;
    producedRepresents += seg.header().represents;
  }
  attemptSpan.setRecords(producedRecords);
  attemptSpan.setRepresents(producedRepresents);
  std::vector<std::shared_ptr<const Segment>> localSegments(numReduces);
  std::vector<std::uint64_t> localSegBytes;
  std::uint64_t bytesSpilled = 0;
  if (eagerSpill() && spillPool != nullptr) {
    SpillWriterPool::Batch batch;
    std::atomic<std::uint64_t> batchBytes{0};
    for (std::uint32_t kb = 0; kb < numReduces; ++kb) {
      Segment* seg = &produced[kb];
      spillPool->submit(
          batch, [this, seg, m, kb, attempt,
                  &batchBytes](std::vector<std::byte>& encodeBuf) {
            // Pool threads are not workers: install the recorder per
            // item so encode/write spans land on the owning job's trace
            // (a shared pool interleaves items from many jobs).
            obs::ScopedRecorder poolScope(recorder.get());
            {
              obs::SpanScope enc(obs::Phase::kSpillEncode,
                                 obs::TaskSide::kMap, m, attempt, kb);
              if (spec.compressSpill) {
                seg->serializeCompressedInto(encodeBuf, spec.keySpace);
                compressedSpillBytes.fetch_add(encodeBuf.size(),
                                               std::memory_order_relaxed);
              } else {
                seg->serializeInto(encodeBuf);
              }
              enc.setBytes(encodeBuf.size());
              enc.setRecords(seg->header().numRecords);
            }
            batchBytes.fetch_add(encodeBuf.size(), std::memory_order_relaxed);
            obs::SpanScope write(obs::Phase::kSpillWrite, obs::TaskSide::kMap,
                                 m, attempt, kb);
            write.setBytes(encodeBuf.size());
            spillSegmentAttempt(m, kb, attempt, encodeBuf);
          });
    }
    batch.wait();  // rethrows the first encode/write failure
    bytesSpilled = batchBytes.load(std::memory_order_relaxed);
  } else if (eagerSpill()) {
    std::vector<std::byte> spillBuf;  // one encode buffer for all keyblocks
    for (std::uint32_t kb = 0; kb < numReduces; ++kb) {
      // Persist map output to attempt-scoped temp files; nothing is
      // visible under the committed names until the attempt commits
      // below (Hadoop commits map output files atomically with the
      // task).
      {
        obs::SpanScope enc(obs::Phase::kSpillEncode, obs::TaskSide::kMap, m,
                           attempt, kb);
        if (spec.compressSpill) {
          produced[kb].serializeCompressedInto(spillBuf, spec.keySpace);
          compressedSpillBytes.fetch_add(spillBuf.size(),
                                         std::memory_order_relaxed);
        } else {
          produced[kb].serializeInto(spillBuf);
        }
        enc.setBytes(spillBuf.size());
        enc.setRecords(produced[kb].header().numRecords);
      }
      bytesSpilled += spillBuf.size();
      obs::SpanScope write(obs::Phase::kSpillWrite, obs::TaskSide::kMap, m,
                           attempt, kb);
      write.setBytes(spillBuf.size());
      spillSegmentAttempt(m, kb, attempt, spillBuf);
    }
  } else {
    // In-memory and hybrid modes publish handles. The resident
    // footprints are measured here, outside the engine mutex — the
    // locked commit section below only charges the precomputed sizes.
    localSegBytes.assign(numReduces, 0);
    for (std::uint32_t kb = 0; kb < numReduces; ++kb) {
      localSegments[kb] =
          std::make_shared<const Segment>(std::move(produced[kb]));
      localSegBytes[kb] = localSegments[kb]->residentBytes();
    }
  }

  attemptSpan.setBytes(bytesSpilled);

  // Injected failure: the attempt did its work (including any temp
  // spill writes) but dies before committing anything.
  if (spec.faultPlan.shouldFail(TaskKind::kMap, m, attempt)) {
    attemptSpan.fail();
    if (eagerSpill()) {
      for (std::uint32_t kb = 0; kb < numReduces; ++kb) {
        discardSegmentAttemptFile(jobDir, m, kb, attempt);
      }
    }
    double tFail = now();
    std::scoped_lock lock(mtx);
    result.sortTotals.add(taskSort);
    ++result.mapFailures;
    recordEvent(TaskEvent::Kind::kMapStart, m, tStart, attempt);
    recordEvent(TaskEvent::Kind::kMapFail, m, tFail, attempt);
    runningMapSet[m] = false;
    --runningMaps;
    if (attempt >= spec.faultPlan.maxAttempts) {
      if (!firstError) {
        firstError = std::make_exception_ptr(
            JobError(TaskKind::kMap, m, attempt, spec.faultPlan.maxAttempts));
      }
    } else {
      markMapEligible(m);  // retry as the next attempt
    }
    cv.notify_all();
    return;
  }

  // Commit phase. Spill mode publishes every keyblock file with an
  // atomic rename FIRST: once segAvail flips below, any reduce may open
  // the committed path lock-free, and a reader still holding the
  // previous attempt's file (recovery races) keeps its old inode.
  if (eagerSpill()) {
    for (std::uint32_t kb = 0; kb < numReduces; ++kb) {
      // One commit span per keyblock, carrying the segment's count
      // annotation: the trace-side proof a reduce may start (the
      // gating invariant compares reduce-attempt starts against these).
      obs::SpanScope commit(obs::Phase::kRenameCommit, obs::TaskSide::kMap, m,
                            attempt, kb);
      commit.setRecords(produced[kb].header().numRecords);
      commit.setRepresents(produced[kb].header().represents);
      commitSegmentFile(jobDir, m, kb, attempt);
    }
  }
  double tEnd = now();

  {
    std::scoped_lock lock(mtx);
    result.sortTotals.add(taskSort);
    recordEvent(TaskEvent::Kind::kMapStart, m, tStart, attempt);
    recordEvent(TaskEvent::Kind::kMapEnd, m, tEnd, attempt);
    result.shuffleBytes += bytesSpilled;
    if (!eagerSpill()) {
      // Publication is a pointer flip per keyblock — no data copy runs
      // under the engine mutex. The commit spans are near-zero-width but
      // keep the schema uniform across shuffle modes: they end inside
      // this critical section, and any gated reduce starts only after a
      // later acquire of mtx, so commit-span end <= reduce-span start.
      for (std::uint32_t kb = 0; kb < numReduces; ++kb) {
        obs::SpanScope commit(obs::Phase::kRenameCommit, obs::TaskSide::kMap,
                              m, attempt, kb);
        commit.setRecords(localSegments[kb]->header().numRecords);
        commit.setRepresents(localSegments[kb]->header().represents);
        // Only slots whose availability was revoked take the new handle
        // (first publication, or a recovery reset of this keyblock). A
        // slot still marked available keeps its original — identical —
        // segment: map execution is deterministic, and the slot's reduce
        // may be runnable or mid-fetch reading the slot WITHOUT mtx, so
        // a recovery re-run overwriting it here would race that read.
        // (A pressure-evicted slot also stays untouched: its handle is
        // null but its committed spill file serves the streaming path.)
        if (segAvail[m][kb]) continue;
        // Charge the published segment's resident footprint; a recovery
        // republish first releases whatever the replaced handle charged.
        if (segCharge[m][kb] != 0) {
          pagePool->release(segCharge[m][kb]);
          segCharge[m][kb] = 0;
        }
        if (localSegBytes[kb] > 0) {
          segCharge[m][kb] = pagePool->charge(localSegBytes[kb]);
        }
        // Donor staging is a pointer copy of the very handle published
        // below — byte-identity of the cached entry is structural. (It
        // also pins a hybrid-mode segment across pressure eviction; the
        // eviction's pointer-equality finalize is unaffected.)
        if (donateToCache) stagedDonation[m][kb] = localSegments[kb];
        segments[m][kb] = std::move(localSegments[kb]);
      }
      publishedAttempt[m] = attempt;
    }
    mapDone[m] = true;
    // Dependency accounting: only a false->true availability transition
    // satisfies a dependency, so a recovery re-run of this map cannot
    // double-decrement a keyblock that already counted its first run.
    for (std::uint32_t kb : mapToReduces[m]) {
      if (segAvail[m][kb]) continue;
      segAvail[m][kb] = true;
      if (remainingDeps[kb] > 0) {
        --remainingDeps[kb];
        if (remainingDeps[kb] == 0 && reduceScheduled[kb] &&
            !reduceRunnableFlag[kb] && !reduceDone[kb] &&
            evictingCount[kb] == 0) {
          reduceRunnableFlag[kb] = true;
          runnableReduces.push_back(kb);
        }
      }
    }
    // Segments for keyblocks outside this map's dependency sets exist too
    // (they are empty in SIDR mode); mark them present for stock fetches.
    for (std::uint32_t kb = 0; kb < numReduces; ++kb) segAvail[m][kb] = true;
    runningMapSet[m] = false;
    --runningMaps;
    cv.notify_all();
  }

  // With a budget, publication is the moment resident bytes grow; shed
  // pressure before this worker picks up its next task. Runs with no
  // locks held — selection and finalize take mtx internally.
  if (budgetEnabled()) maybePressureSpill();
}

void JobContext::maybePressureSpill() {
  // Pressure-driven eviction (hybrid mode): when the page pool crosses
  // its high-water mark, encode the coldest committed keyblocks to the
  // spill directory — through the SAME attempt-file + atomic-rename
  // protocol eager spill uses — then drop their in-memory handles and
  // reclaim the pages. "Coldest" = largest priorityOrder position (its
  // reduce runs last, so its pages stay reclaimed longest), ties broken
  // toward the larger charge.
  //
  // Safety: a keyblock with an eviction in flight is never pushed
  // runnable (every push site gates on evictingCount), and a keyblock
  // that is already runnable/running/done is never selected — so no
  // lock-free reduce fetch can race the handle reset. The finalize step
  // re-checks the gated push under mtx.
  while (pagePool->overHighWater()) {
    struct Victim {
      std::uint32_t m = 0;
      std::uint32_t kb = 0;
      std::uint32_t attempt = 0;
      std::shared_ptr<const Segment> seg;
      std::uint64_t charge = 0;
    };
    std::vector<Victim> victims;
    {
      std::scoped_lock lock(mtx);
      std::vector<Victim> candidates;
      for (std::uint32_t m = 0; m < numMaps; ++m) {
        for (std::uint32_t kb = 0; kb < numReduces; ++kb) {
          if (!segAvail[m][kb] || segEvicting[m][kb]) continue;
          if (reduceRunnableFlag[kb] || reduceDone[kb]) continue;
          const std::shared_ptr<const Segment>& seg = segments[m][kb];
          if (seg == nullptr || seg->header().numRecords == 0) continue;
          if (segCharge[m][kb] == 0) continue;  // nothing to reclaim
          candidates.push_back(
              Victim{m, kb, publishedAttempt[m], seg, segCharge[m][kb]});
        }
      }
      std::sort(candidates.begin(), candidates.end(),
                [this](const Victim& a, const Victim& b) {
                  if (posOf[a.kb] != posOf[b.kb]) {
                    return posOf[a.kb] > posOf[b.kb];
                  }
                  return a.charge > b.charge;
                });
      const std::uint64_t target = pagePool->lowWaterBytes();
      std::uint64_t projected = pagePool->residentBytes();
      for (Victim& v : candidates) {
        if (projected <= target) break;
        segEvicting[v.m][v.kb] = true;
        ++evictingCount[v.kb];
        projected -= std::min(projected, v.charge);
        victims.push_back(std::move(v));
      }
    }
    if (victims.empty()) return;  // over budget but nothing evictable

    // Encode + write the attempt files outside the lock, overlapping
    // keyblocks on the spill-writer pool when one exists. Renames run
    // only after every write succeeded.
    std::exception_ptr error;
    auto writeOne = [this](const Victim& v, std::vector<std::byte>& buf) {
      obs::SpanScope span(obs::Phase::kPressureSpill, obs::TaskSide::kMap, v.m,
                          v.attempt, v.kb);
      span.setRecords(v.seg->header().numRecords);
      span.setRepresents(v.seg->header().represents);
      if (spec.compressSpill) {
        v.seg->serializeCompressedInto(buf, spec.keySpace);
        compressedSpillBytes.fetch_add(buf.size(), std::memory_order_relaxed);
      } else {
        v.seg->serializeInto(buf);
      }
      span.setBytes(buf.size());
      spillSegmentAttempt(v.m, v.kb, v.attempt, buf);
    };
    try {
      if (spillPool != nullptr) {
        SpillWriterPool::Batch batch;
        for (const Victim& v : victims) {
          spillPool->submit(batch,
                            [this, &v, &writeOne](std::vector<std::byte>& buf) {
                              obs::ScopedRecorder poolScope(recorder.get());
                              writeOne(v, buf);
                            });
        }
        batch.wait();
      } else {
        std::vector<std::byte> buf;
        for (const Victim& v : victims) writeOne(v, buf);
      }
      for (const Victim& v : victims) {
        // The eviction commit reuses the publication span schema; the
        // gating checker takes the EARLIEST commit per (map, keyblock),
        // so the original publication span keeps proving reduce starts,
        // and the tally checker reads the same represents off this one.
        obs::SpanScope commit(obs::Phase::kRenameCommit, obs::TaskSide::kMap,
                              v.m, v.attempt, v.kb);
        commit.setRecords(v.seg->header().numRecords);
        commit.setRepresents(v.seg->header().represents);
        commitSegmentFile(jobDir, v.m, v.kb, v.attempt);
      }
    } catch (...) {
      error = std::current_exception();
    }

    {
      std::scoped_lock lock(mtx);
      for (const Victim& v : victims) {
        segEvicting[v.m][v.kb] = false;
        --evictingCount[v.kb];
        // Pointer-equality guard: a recovery republish may have replaced
        // the handle (and re-charged the slot) while the file was being
        // written; then the slot's charge belongs to the NEW segment and
        // must stay, and the stale file is simply never read (the fetch
        // sees the fresh handle).
        if (!error && segments[v.m][v.kb] == v.seg) {
          segments[v.m][v.kb] = nullptr;
          if (segCharge[v.m][v.kb] != 0) {
            pagePool->release(segCharge[v.m][v.kb]);
            segCharge[v.m][v.kb] = 0;
          }
          pressureSpills.fetch_add(1, std::memory_order_relaxed);
        }
        if (evictingCount[v.kb] == 0 && remainingDeps[v.kb] == 0 &&
            reduceScheduled[v.kb] && !reduceRunnableFlag[v.kb] &&
            !reduceDone[v.kb]) {
          reduceRunnableFlag[v.kb] = true;
          runnableReduces.push_back(v.kb);
        }
      }
      if (error && !firstError) firstError = error;
      cv.notify_all();
    }
    if (error) return;
  }
}

void JobContext::runReduce(std::uint32_t kb) {
  std::uint32_t attempt;
  {
    std::scoped_lock lock(mtx);
    attempt = ++reduceAttempts[kb];
  }
  obs::SpanScope attemptSpan(obs::Phase::kTaskAttempt, obs::TaskSide::kReduce,
                             kb, attempt, kb);
  double tStart = now();

  // Injected failure: simulate this reduce attempt dying after starting
  // but before committing output.
  if (spec.faultPlan.shouldFail(TaskKind::kReduce, kb, attempt)) {
    attemptSpan.fail();
    double tFail = now();
    std::scoped_lock lock(mtx);
    ++result.reduceFailures;
    recordEvent(TaskEvent::Kind::kReduceStart, kb, tStart, attempt);
    recordEvent(TaskEvent::Kind::kReduceFail, kb, tFail, attempt);
    reduceRunnableFlag[kb] = false;
    --runningReduces;
    if (attempt >= spec.faultPlan.maxAttempts) {
      if (!firstError) {
        firstError = std::make_exception_ptr(JobError(
            TaskKind::kReduce, kb, attempt, spec.faultPlan.maxAttempts));
      }
      cv.notify_all();
      return;
    }
    if (spec.recovery == RecoveryModel::kRecomputeDeps) {
      // Intermediate data was volatile: drop this keyblock's segments
      // and re-execute exactly the I_l map subset (paper section 6).
      for (std::uint32_t m : deps[kb]) {
        if (segAvail[m][kb]) {
          segAvail[m][kb] = false;
          ++remainingDeps[kb];
        }
        mapDone[m] = false;
        markMapEligible(m);
      }
      if (remainingDeps[kb] == 0 && evictingCount[kb] == 0) {
        // nothing was available yet
        reduceRunnableFlag[kb] = true;
        runnableReduces.push_back(kb);
      }
    } else if (evictingCount[kb] == 0) {
      // Persisted intermediate data: retry immediately, re-fetch all.
      // (An in-flight eviction re-queues the keyblock when it
      // finalizes; it cannot actually occur here — evictions never
      // start on a runnable keyblock — but the gate keeps every push
      // site uniform.)
      reduceRunnableFlag[kb] = true;
      runnableReduces.push_back(kb);
    }
    cv.notify_all();
    return;
  }

  // Fetch phase. Stock Hadoop contacts every map task; SIDR contacts
  // only the maps in I_l (Table 3's connection asymmetry).
  std::vector<std::uint32_t> fetchSet;
  if (isSidr()) {
    fetchSet = deps[kb];
  } else {
    fetchSet.resize(numMaps);
    for (std::uint32_t m = 0; m < numMaps; ++m) fetchSet[m] = m;
  }

  // The entire fetch runs WITHOUT the engine mutex, in both modes:
  // segments are immutable once published, and this reduce only became
  // runnable after observing (under mtx) that every fetched dependency
  // committed, which ordered those publications before these reads.
  // The transport turns that observation into segments however its
  // data plane works — handles, spill-file reads, or framed sockets —
  // one FetchedSegment per dependency, in fetchSet order, so the
  // accounting and the merge below are transport-agnostic.
  std::vector<FetchedSegment> fetchedInputs;
  std::uint64_t tally = 0;
  std::uint64_t connections = 0;
  std::uint64_t nonEmpty = 0;
  std::uint64_t bytesFetched = 0;
  {
    std::scoped_lock lock(mtx);
    recordEvent(TaskEvent::Kind::kReduceStart, kb, tStart, attempt);
  }
  double tFetchStart = now();
  std::uint64_t recordsFetched = 0;
  {
    obs::SpanScope fetchSpan(obs::Phase::kFetch, obs::TaskSide::kReduce, kb,
                             attempt, kb);
    // Bounded retry loop: each attempt is one kTransportFetch span
    // NESTED inside this single kFetch span, so a retried fetch never
    // emits unpaired fetch spans and the kFetch tallies (checked
    // against the commit spans) are written exactly once, from the
    // attempt that succeeded — retries can never double-count
    // shuffleBytes or the annotation tally.
    for (std::uint32_t fetchAttempt = 1;; ++fetchAttempt) {
      FetchStats stats;
      obs::SpanScope transportSpan(obs::Phase::kTransportFetch,
                                   obs::TaskSide::kReduce, kb, fetchAttempt,
                                   kb);
      transportSpan.setConnections(fetchSet.size());
      try {
        TransportFetchRequest freq;
        freq.keyblock = kb;
        freq.maps = std::span<const std::uint32_t>(fetchSet);
        freq.fetchAttempt = fetchAttempt;
        fetchedInputs = transport->fetch(freq, stats);
        for (const FetchedSegment& fs : fetchedInputs) {
          ++connections;
          tally += fs.header.represents;
          recordsFetched += fs.header.numRecords;
          if (fs.header.numRecords > 0) ++nonEmpty;
        }
        bytesFetched = stats.bytesFetched;
        transportSpan.setBytes(stats.bytesFetched);
        transportSpan.setRecords(recordsFetched);
        transportSpan.setRepresents(tally);
        std::scoped_lock lock(mtx);
        result.transportTotals.wireBytes += stats.wireBytes;
        result.transportTotals.framesSent += stats.framesSent;
        result.transportTotals.framesReceived += stats.framesReceived;
        result.transportTotals.connectionsOpened += stats.connectionsOpened;
        result.transportTotals.connectionsReused += stats.connectionsReused;
        break;
      } catch (const TransportError& e) {
        transportSpan.fail();
        transportSpan.setBytes(stats.wireBytes);
        {
          // A failed attempt's partial bytes are WASTED wire traffic,
          // never shuffleBytes — the retry re-transfers them.
          std::scoped_lock lock(mtx);
          ++result.transportTotals.fetchRetries;
          result.transportTotals.wastedWireBytes += stats.wireBytes;
          result.transportTotals.framesSent += stats.framesSent;
          result.transportTotals.framesReceived += stats.framesReceived;
          result.transportTotals.connectionsOpened += stats.connectionsOpened;
          result.transportTotals.connectionsReused += stats.connectionsReused;
        }
        if (fetchAttempt >= spec.faultPlan.maxFetchAttempts) {
          // Exhaustion is a job failure naming the reduce task and
          // attempt (runClaimedTask routes it into firstError).
          throw JobError(
              TaskKind::kReduce, kb, attempt, spec.faultPlan.maxAttempts,
              "shuffle fetch gave up after " + std::to_string(fetchAttempt) +
                  " attempts (" + transportFaultName(e.fault()) + " on the " +
                  shuffleTransportName(transportKind) + " transport)");
        }
        // Bounded exponential backoff before the next attempt.
        std::this_thread::sleep_for(std::chrono::milliseconds(
            1u << std::min<std::uint32_t>(fetchAttempt, 5)));
      }
    }
    fetchSpan.setBytes(bytesFetched);
    fetchSpan.setRecords(recordsFetched);
    // The reduce-side annotation tally rides on the fetch span, so the
    // trace alone can cross-check it against the commit spans' sums.
    fetchSpan.setRepresents(tally);
    fetchSpan.setConnections(connections);
  }
  double tFetchEnd = now();

  // Merge/group/reduce (outside the lock: pure local computation). One
  // ordered input sequence feeds the merger whatever the source kind —
  // materialized spill loads, resident handles (merged straight from
  // their packed form), or bounded streaming cursors — and the record
  // tally comes off the headers, so no input is materialized just to be
  // counted.
  std::vector<SegmentMerger::Input> inputs;
  inputs.reserve(fetchedInputs.size());
  std::unique_ptr<SegmentMerger> merger;
  {
    obs::SpanScope mergeSpan(obs::Phase::kMerge, obs::TaskSide::kReduce, kb,
                             attempt, kb);
    // Empty inputs contributed their header tallies above but carry no
    // records — the merger never sees them, whatever the transport.
    for (const FetchedSegment& fs : fetchedInputs) {
      if (fs.header.numRecords == 0) continue;
      SegmentMerger::Input in;
      if (fs.stream != nullptr) {
        in.stream = fs.stream.get();
      } else if (fs.owned != nullptr) {
        in.segment = fs.owned.get();
      } else {
        in.segment = fs.handle.get();
      }
      inputs.push_back(in);
    }
    merger = std::make_unique<SegmentMerger>(
        std::span<const SegmentMerger::Input>(inputs));
    mergeSpan.setRecords(recordsFetched);
  }
  auto reducer = spec.reducerFactory();
  VectorReduceContext out;
  std::vector<KeyValue> outRecords;
  {
    obs::SpanScope reduceSpan(obs::Phase::kReduce, obs::TaskSide::kReduce, kb,
                              attempt, kb);
    merger->forEachGroup([&](const nd::Coord& key,
                             std::span<const Value* const> values,
                             std::uint64_t /*groupRepresents*/) {
      reducer->reduce(key, values, out);
    });
    outRecords = out.take();
    reduceSpan.setRecords(outRecords.size());
  }
  // Hybrid-mode streams over committed files read their windows lazily
  // during the merge; fold their I/O into the shuffle accounting now
  // that they are drained. Transports that already counted the full
  // payload at fetch time (file-served over a resident buffer) leave
  // countStreamBytes false so nothing is double-counted.
  for (const FetchedSegment& fs : fetchedInputs) {
    if (fs.stream != nullptr && fs.countStreamBytes) {
      bytesFetched += fs.stream->bytesRead();
    }
  }

  // Linearize the output keys OUTSIDE the lock (reducers usually emit
  // the group key, which lies inside keySpace; an out-of-space emission
  // just forfeits the collectAll fast merge rather than failing).
  std::vector<std::uint64_t> outLinear;
  if (spec.keySpace.rank() > 0) {
    outLinear.reserve(outRecords.size());
    for (const KeyValue& kv : outRecords) {
      bool inSpace = kv.key.rank() == spec.keySpace.rank();
      for (std::size_t d = 0; inSpace && d < spec.keySpace.rank(); ++d) {
        inSpace = kv.key[d] >= 0 && kv.key[d] < spec.keySpace[d];
      }
      if (!inSpace) {
        outLinear.clear();
        break;
      }
      outLinear.push_back(
          static_cast<std::uint64_t>(nd::linearize(kv.key, spec.keySpace)));
    }
  }

  attemptSpan.setBytes(bytesFetched);
  attemptSpan.setRecords(outRecords.size());
  attemptSpan.setRepresents(tally);

  double tEnd = now();
  // Declared before the lock so the commit span covers the whole locked
  // publication and its end still falls inside the attempt span.
  obs::SpanScope commitSpan(obs::Phase::kOutputCommit, obs::TaskSide::kReduce,
                            kb, attempt, kb);
  std::scoped_lock lock(mtx);
  result.shuffleConnections += connections;
  result.nonEmptyConnections += nonEmpty;
  result.shuffleBytes += bytesFetched;
  result.shuffleFetchSeconds += tFetchEnd - tFetchStart;
  ReduceOutput& ro = result.outputs[kb];
  ro.keyblock = kb;
  ro.records = std::move(outRecords);
  ro.linearKeys = std::move(outLinear);
  ro.availableAt = tEnd;
  ro.annotationTally = tally;
  commitSpan.setRecords(ro.records.size());
  if (!spec.expectedRepresents.empty() &&
      tally != spec.expectedRepresents[kb]) {
    ++result.annotationViolations;
  }
  result.recordsPerReducer[kb] = recordsFetched;
  recordEvent(TaskEvent::Kind::kReduceEnd, kb, tEnd, attempt);
  if (budgetEnabled()) {
    // This keyblock's inputs are consumed for good (reduceDone blocks
    // any further fetch or eviction): drop the handles and give their
    // pages back to the pool. The actual frees run when this frame's
    // local references unwind, outside the mutex.
    for (std::uint32_t m : fetchSet) {
      if (segCharge[m][kb] != 0) {
        pagePool->release(segCharge[m][kb]);
        segCharge[m][kb] = 0;
      }
      segments[m][kb] = nullptr;
    }
  }
  reduceDone[kb] = true;
  ++completedReduces;
  --runningReduces;
  if (isSidr()) {
    --scheduledActive;
    scheduleReducesLocked();
  }
  cv.notify_all();
}

}  // namespace sidr::mr
