#include "mapreduce/engine.hpp"

#include "mapreduce/map_pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <filesystem>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "obs/trace.hpp"
#include "scifile/storage.hpp"

namespace sidr::mr {

namespace {

using Clock = std::chrono::steady_clock;

/// Small shared pool of threads that encode and write map attempts'
/// per-keyblock spill files, so keyblocks overlap instead of running
/// sequentially on the map worker (DESIGN.md section 12). Only the
/// attempt-suffixed TEMPORARY files are written here: the submitting
/// map worker waits for its whole batch, and only then commits each
/// keyblock with the atomic rename itself — so the per-(map, keyblock)
/// publication order the lock-free reduce fetch relies on, and PR 2's
/// crash/recovery guarantees, are exactly the sequential path's.
class SpillWriterPool {
 public:
  /// One work item: encode one segment into the worker's reusable
  /// buffer and write one attempt file.
  using Job = std::function<void(std::vector<std::byte>& encodeBuf)>;

  /// Completion handle for one map attempt's group of writes.
  class Batch {
   public:
    /// Blocks until every job submitted against this batch finished;
    /// rethrows the first encode/write failure. Must be called before
    /// the batch (or anything its jobs reference) is destroyed.
    void wait() {
      std::unique_lock lock(mtx_);
      cv_.wait(lock, [this] { return pending_ == 0; });
      if (error_) std::rethrow_exception(error_);
    }

   private:
    friend class SpillWriterPool;
    std::mutex mtx_;
    std::condition_variable cv_;
    std::size_t pending_ = 0;
    std::exception_ptr error_;
  };

  explicit SpillWriterPool(std::uint32_t numThreads) {
    workers_.reserve(numThreads);
    for (std::uint32_t i = 0; i < numThreads; ++i) {
      workers_.emplace_back([this] { workerLoop(); });
    }
  }

  /// Drains any queued jobs, then joins the workers (jthread dtors).
  ~SpillWriterPool() {
    {
      std::scoped_lock lock(mtx_);
      stop_ = true;
    }
    cv_.notify_all();
  }

  void submit(Batch& batch, Job job) {
    {
      std::scoped_lock lock(batch.mtx_);
      ++batch.pending_;
    }
    {
      std::scoped_lock lock(mtx_);
      queue_.push_back(Item{&batch, std::move(job)});
    }
    cv_.notify_one();
  }

 private:
  struct Item {
    Batch* batch;
    Job job;
  };

  void workerLoop() {
    // One encode buffer per worker, reused across jobs — the same
    // allocation amortization the sequential path got from its single
    // spillBuf.
    std::vector<std::byte> encodeBuf;
    std::unique_lock lock(mtx_);
    while (true) {
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and everything drained
      Item item = std::move(queue_.front());
      queue_.pop_front();
      lock.unlock();
      std::exception_ptr error;
      try {
        item.job(encodeBuf);
      } catch (...) {
        error = std::current_exception();
      }
      {
        std::scoped_lock batchLock(item.batch->mtx_);
        if (error && !item.batch->error_) item.batch->error_ = error;
        --item.batch->pending_;
        // Notify under the batch mutex: the submitter destroys the
        // stack-allocated Batch right after wait() returns, so the
        // last touch of the cv must happen-before the waiter can
        // observe pending_ == 0.
        item.batch->cv_.notify_all();
      }
      lock.lock();
    }
  }

  std::mutex mtx_;
  std::condition_variable cv_;
  std::deque<Item> queue_;
  bool stop_ = false;
  std::vector<std::jthread> workers_;
};

}  // namespace

std::vector<KeyValue> JobResult::collectAll() const {
  // Each reducer's output is already key-sorted (the merger iterates
  // keys ascending), so a k-way merge over the outputs suffices — no
  // full re-sort of the concatenation, and no per-output staging
  // copies: SegmentMerger streams straight out of the ReduceOutput
  // vectors and the result is filled through one exact-size reserve.
  std::size_t total = 0;
  bool allLinear = true;
  for (const ReduceOutput& out : outputs) {
    total += out.records.size();
    if (!out.records.empty() && out.linearKeys.size() != out.records.size()) {
      // Any merged output lacking cached linear keys drops every cursor
      // to Coord order, which the u64 order matches exactly (DESIGN.md
      // section 11).
      allLinear = false;
    }
  }
  std::vector<SegmentMerger::Input> inputs;
  inputs.reserve(outputs.size());
  for (const ReduceOutput& out : outputs) {
    SegmentMerger::Input in;
    in.run = &out.records;
    in.runLin = allLinear ? out.linearKeys.data() : nullptr;
    inputs.push_back(in);
  }
  SegmentMerger merger{std::span<const SegmentMerger::Input>(inputs)};
  std::vector<KeyValue> all;
  all.reserve(total);
  merger.forEachRecord(
      [&all](const KeyValue& rec, std::uint64_t /*lin*/) { all.push_back(rec); });
  return all;
}

/// Collects a reduce task's output records (arrive in key order because
/// the merger iterates ascending).
class VectorReduceContext final : public ReduceContext {
 public:
  void emit(const nd::Coord& key, Value value) override {
    records_.push_back(KeyValue{key, std::move(value), 1});
  }

  std::vector<KeyValue> take() { return std::move(records_); }

 private:
  std::vector<KeyValue> records_;
};

struct Engine::Impl {
  explicit Impl(const JobSpec& s) : spec(s) {}

  const JobSpec& spec;
  std::uint32_t numMaps = 0;
  std::uint32_t numReduces = 0;

  std::mutex mtx;
  std::condition_variable cv;

  // --- map state ---
  std::deque<std::uint32_t> eligibleMaps;  // schedulable, not yet running
  std::vector<bool> mapQueued;             // present in eligibleMaps
  std::vector<bool> mapEverEligible;
  std::vector<bool> mapDone;
  std::uint32_t runningMaps = 0;

  // --- segment store: map output per (map, keyblock) ---
  // In-memory mode publishes one immutable, shared segment handle per
  // (map, keyblock): runMap builds the Segment outside the lock and the
  // commit section only moves the pointer into its slot (an
  // availability flip, not a data copy). A reduce fetch is then a plain
  // pointer read with NO lock held: the reduce only runs after
  // observing (under mtx) that every dependency flipped segAvail, and
  // that same critical section published the handles, so the mutex
  // release/acquire pair establishes the happens-before edge. Segments
  // are never mutated after publication; a recovery re-run republishes
  // a fresh handle under mtx before re-flipping segAvail, while any
  // still-referenced old handle stays alive through shared ownership.
  std::vector<std::vector<std::shared_ptr<const Segment>>> segments;
  std::vector<std::vector<bool>> segAvail;

  // --- memory budget / hybrid out-of-core state (DESIGN.md §14) ---
  // With spillDirectory set AND memoryBudgetBytes > 0 the engine runs in
  // hybrid mode: maps publish in-memory handles exactly like the
  // in-memory engine, every published segment's resident footprint is
  // charged against `pagePool`, and when the pool crosses its high-water
  // mark the coldest committed keyblocks are evicted — encoded through
  // the same attempt-file + atomic-rename protocol eager spill uses —
  // until the pool drops to its low-water mark. A reduce whose handle
  // slot is null streams the evicted file back through a bounded
  // SegmentStream window instead of materializing it.
  std::unique_ptr<SegmentPagePool> pagePool;
  /// Pages charged for the published segment in segments[m][kb] (bytes
  /// after page rounding); 0 when nothing is charged for the slot.
  std::vector<std::vector<std::uint64_t>> segCharge;
  /// True while a pressure eviction of (m, kb) is writing its file.
  std::vector<std::vector<bool>> segEvicting;
  /// Per keyblock: number of in-flight evictions of its segments. A
  /// reduce is never pushed runnable while this is non-zero — the
  /// lock-free fetch must observe either the handle or the committed
  /// file, never a half-evicted slot — so every runnable push site gates
  /// on it and eviction finalize re-checks the push.
  std::vector<std::uint32_t> evictingCount;
  /// Attempt whose segments are currently published, per map: names the
  /// attempt-suffixed temporary file an eviction writes.
  std::vector<std::uint32_t> publishedAttempt;
  /// Keyblock -> position in priorityOrder (larger = colder, evicted
  /// first: it runs latest, so its pages are reclaimed longest).
  std::vector<std::uint32_t> posOf;
  std::atomic<std::uint64_t> pressureSpills{0};
  std::atomic<std::uint64_t> compressedSpillBytes{0};

  // --- reduce state ---
  std::vector<std::vector<std::uint32_t>> deps;  // resolved I_l per keyblock
  std::vector<std::vector<std::uint32_t>> mapToReduces;
  std::vector<std::uint32_t> remainingDeps;
  std::vector<bool> reduceScheduled;
  std::vector<bool> reduceRunnableFlag;
  std::deque<std::uint32_t> runnableReduces;
  std::vector<bool> reduceDone;
  std::uint32_t scheduledActive = 0;  // scheduled && !done (slot holders)
  std::uint32_t nextPriorityPos = 0;
  std::uint32_t runningReduces = 0;
  std::uint32_t completedReduces = 0;

  std::vector<std::uint32_t> priorityOrder;

  Clock::time_point start;
  JobResult result;
  std::exception_ptr firstError;

  double now() const {
    return std::chrono::duration<double>(Clock::now() - start).count();
  }

  void recordEvent(TaskEvent::Kind kind, std::uint32_t id, double t,
                   std::uint32_t attempt) {
    result.events.push_back(TaskEvent{kind, id, t, attempt});
  }

  bool isSidr() const { return spec.mode == ExecutionMode::kSidr; }

  // ---- map-output segment store (in-memory or spilled to files) ----

  bool spillEnabled() const { return !spec.spillDirectory.empty(); }
  bool budgetEnabled() const { return spec.memoryBudgetBytes > 0; }
  /// Eager spill = the pre-budget spill mode: every map attempt encodes
  /// all keyblocks to files and reduces always load from disk. With a
  /// budget the spill directory is instead the eviction target and maps
  /// publish in-memory handles.
  bool eagerSpill() const { return spillEnabled() && !budgetEnabled(); }

  /// Spill-writer pool; null when spilling is off or spillWriters == 1
  /// (then encode+write runs inline on the map worker, as the seed did).
  std::unique_ptr<SpillWriterPool> spillPool;

  /// Span/counter recorder; null unless spec.recordTrace. Shares the
  /// event log's epoch (`start`), so span times and event times are on
  /// one timebase.
  std::unique_ptr<obs::TraceRecorder> recorder;

  std::string segmentPath(std::uint32_t m, std::uint32_t kb) const {
    return spec.spillDirectory + "/" + segmentFileName(m, kb);
  }

  /// Writes one serialized segment to the attempt's TEMPORARY file.
  /// Nothing becomes visible under the committed name until the whole
  /// attempt commits via commitSegmentFile (atomic rename), so a
  /// recovery re-run never truncates a file a concurrent lock-free
  /// reduce fetch may be mid-read on.
  void spillSegmentAttempt(std::uint32_t m, std::uint32_t kb,
                           std::uint32_t attempt,
                           std::span<const std::byte> bytes) const {
    sci::FileStorage file(
        spec.spillDirectory + "/" + segmentAttemptFileName(m, kb, attempt),
        sci::FileStorage::Mode::kCreate);
    file.writeAt(0, bytes);
    file.flush();
  }

  /// Reads ONLY the header of a spilled segment — the cheap
  /// annotation-tally access of paper section 3.2.1.
  SegmentHeader peekSpilledHeader(std::uint32_t m, std::uint32_t kb) const {
    sci::FileStorage file(segmentPath(m, kb),
                          sci::FileStorage::Mode::kOpenReadOnly);
    std::array<std::byte, Segment::kHeaderBytes> head{};
    file.readAt(0, head);
    return Segment::peekHeader(head);
  }

  /// Reads and decodes a spilled segment; adds the bytes moved to
  /// `bytesFetched` (the shuffleBytes accounting). Compressed spill
  /// files decode through the streaming reader (the only decoder that
  /// understands the delta/varint wire form); the window is irrelevant
  /// here since the whole segment materializes anyway.
  Segment loadSpilledSegment(std::uint32_t m, std::uint32_t kb,
                             std::uint64_t& bytesFetched) const {
    if (spec.compressSpill) {
      SegmentStream stream(segmentPath(m, kb),
                           std::max<std::size_t>(spec.mergeWindowBytes, 1),
                           /*compressed=*/true, spec.keySpace);
      Segment seg = Segment::fromStream(stream);
      bytesFetched += stream.bytesRead();
      return seg;
    }
    sci::FileStorage file(segmentPath(m, kb),
                          sci::FileStorage::Mode::kOpenReadOnly);
    std::vector<std::byte> bytes(file.size());
    file.readAt(0, bytes);
    bytesFetched += bytes.size();
    return Segment::deserialize(bytes);
  }

  // Marks a map schedulable (SIDR: because a scheduled reduce depends on
  // it; stock: at job start). Caller holds mtx.
  void markMapEligible(std::uint32_t m) {
    if (mapDone[m] || mapQueued[m] || runningMapSet[m]) return;
    eligibleMaps.push_back(m);
    mapQueued[m] = true;
    mapEverEligible[m] = true;
  }

  std::vector<bool> runningMapSet;
  // Attempts STARTED per task (1-based attempt ids). Incremented when
  // an execution begins, so injected faults and events name the attempt
  // they belong to; compared against spec.faultPlan.maxAttempts when an
  // attempt fails.
  std::vector<std::uint32_t> mapAttempts;
  std::vector<std::uint32_t> reduceAttempts;

  // Schedules reduce tasks into free slots, in priority order; SIDR only.
  // Caller holds mtx.
  void scheduleReducesLocked() {
    while (scheduledActive < spec.reduceSlots &&
           nextPriorityPos < numReduces) {
      std::uint32_t kb = priorityOrder[nextPriorityPos++];
      reduceScheduled[kb] = true;
      ++scheduledActive;
      // Scheduling a reduce walks the task tree and marks its dependent
      // maps schedulable (paper section 3.3).
      for (std::uint32_t m : deps[kb]) markMapEligible(m);
      if (remainingDeps[kb] == 0 && !reduceRunnableFlag[kb] &&
          evictingCount[kb] == 0) {
        reduceRunnableFlag[kb] = true;
        runnableReduces.push_back(kb);
      }
    }
  }

  void runMap(std::uint32_t m);
  void runReduce(std::uint32_t kb);
  void maybePressureSpill();
  void workerLoop();
  void workerTasks();
  JobResult run();
};

Engine::Engine(JobSpec spec) : spec_(std::move(spec)) {
  if (!spec_.readerFactory || !spec_.mapperFactory || !spec_.reducerFactory) {
    throw std::invalid_argument("Engine: missing task factory");
  }
  if (spec_.partitioner == nullptr) {
    throw std::invalid_argument("Engine: missing partitioner");
  }
  if (spec_.numReducers == 0) {
    throw std::invalid_argument("Engine: numReducers must be > 0");
  }
  if (spec_.keySpace.rank() > 0 && !spec_.keySpace.isValidShape()) {
    throw std::invalid_argument(
        "Engine: keySpace must be a valid shape (all extents > 0) or empty");
  }
  if (spec_.mode == ExecutionMode::kSidr &&
      spec_.reduceDeps.size() != spec_.numReducers) {
    throw std::invalid_argument(
        "Engine: SIDR mode requires one dependency set per keyblock");
  }
  for (const auto& ds : spec_.reduceDeps) {
    for (std::uint32_t s : ds) {
      if (s >= spec_.splits.size()) {
        throw std::invalid_argument("Engine: dependency references bad split");
      }
    }
  }
  if (!spec_.reducePriority.empty()) {
    if (spec_.reducePriority.size() != spec_.numReducers) {
      throw std::invalid_argument(
          "Engine: priority list must cover all reduces");
    }
    // An out-of-range or duplicate keyblock id would corrupt the slot
    // accounting in scheduleReducesLocked (out-of-bounds write /
    // double-counted scheduledActive).
    std::vector<bool> seen(spec_.numReducers, false);
    for (std::uint32_t kb : spec_.reducePriority) {
      if (kb >= spec_.numReducers) {
        throw std::invalid_argument(
            "Engine: priority list names keyblock " + std::to_string(kb) +
            " but job has " + std::to_string(spec_.numReducers) + " reduces");
      }
      if (seen[kb]) {
        throw std::invalid_argument(
            "Engine: priority list repeats keyblock " + std::to_string(kb));
      }
      seen[kb] = true;
    }
  }
  if (!spec_.expectedRepresents.empty() &&
      spec_.expectedRepresents.size() != spec_.numReducers) {
    throw std::invalid_argument(
        "Engine: expectedRepresents must cover all reduces when non-empty");
  }
  if (spec_.faultPlan.maxAttempts == 0) {
    throw std::invalid_argument("Engine: FaultPlan::maxAttempts must be > 0");
  }
  if (spec_.spillWriters == 0) {
    throw std::invalid_argument("Engine: spillWriters must be > 0");
  }
  if (spec_.memoryBudgetBytes > 0) {
    if (spec_.spillDirectory.empty()) {
      throw std::invalid_argument(
          "Engine: memoryBudgetBytes requires a spillDirectory to evict into");
    }
    if (spec_.memoryBudgetBytes < SegmentPagePool::kPageBytes) {
      throw std::invalid_argument(
          "Engine: memoryBudgetBytes must cover at least one page (" +
          std::to_string(SegmentPagePool::kPageBytes) + " bytes)");
    }
    if (spec_.mergeWindowBytes == 0) {
      throw std::invalid_argument(
          "Engine: mergeWindowBytes must be > 0 when a memory budget is set");
    }
  }
  if (spec_.compressSpill) {
    if (spec_.spillDirectory.empty()) {
      throw std::invalid_argument(
          "Engine: compressSpill requires a spillDirectory");
    }
    if (spec_.keySpace.rank() == 0) {
      throw std::invalid_argument(
          "Engine: compressSpill requires a keySpace (the codec delta-encodes "
          "linear keys)");
    }
  }
  for (const FaultSpec& f : spec_.faultPlan.faults) {
    if (f.attempt == 0) {
      throw std::invalid_argument("Engine: fault attempt ids are 1-based");
    }
    const std::size_t bound = f.kind == TaskKind::kMap
                                  ? spec_.splits.size()
                                  : spec_.numReducers;
    if (f.id >= bound) {
      throw std::invalid_argument(
          std::string("Engine: fault plan names ") + taskKindName(f.kind) +
          " task " + std::to_string(f.id) + " out of range");
    }
  }
}

void Engine::Impl::runMap(std::uint32_t m) {
  std::uint32_t attempt;
  {
    std::scoped_lock lock(mtx);
    attempt = ++mapAttempts[m];
    // Any execution beyond the first attempt is recovery cost, whether
    // it re-runs after a recovery reset or retries a failed attempt.
    if (attempt > 1) ++result.mapsReExecuted;
  }
  // The attempt span brackets the whole execution; being the first
  // local, it is destroyed last and therefore contains every phase span
  // below — including the publication spans recorded under the mutex
  // after tEnd (well-nestedness is structural, not bookkept).
  obs::SpanScope attemptSpan(obs::Phase::kTaskAttempt, obs::TaskSide::kMap, m,
                             attempt);
  double tStart = now();
  auto mapper = spec.mapperFactory();
  std::unique_ptr<Combiner> combiner =
      spec.combinerFactory ? spec.combinerFactory() : nullptr;
  // Batched read → map → route → sort/combine lives in the shared map
  // pipeline (map_pipeline.cpp); with spec.keySpace set it runs the
  // linearized fast path, otherwise the per-record lexicographic one.
  std::vector<Segment> produced =
      runMapPipeline(spec.splits[m], m, spec.readerFactory, *mapper,
                     *spec.partitioner, numReduces, combiner.get(),
                     spec.keySpace, pagePool.get());

  // Verify routing against the declared dependency sets (a record
  // landing in a keyblock that does not list this split is a
  // partitioner/dependency bug). Validated for ALL keyblocks before any
  // spill job is queued, so a violation can never throw while pool jobs
  // still reference this frame's segments.
  for (std::uint32_t kb = 0; isSidr() && kb < numReduces; ++kb) {
    if (produced[kb].empty()) continue;
    const auto& dl = deps[kb];
    if (std::find(dl.begin(), dl.end(), m) == dl.end()) {
      throw std::logic_error(
          "SIDR routing violation: map " + std::to_string(m) +
          " produced data for undeclared keyblock " + std::to_string(kb));
    }
  }
  // In-memory mode never serializes: the segment itself becomes the
  // published immutable handle. Spill mode encodes with the bulk codec
  // and writes a map-output file per keyblock — on the spill-writer
  // pool when one is configured, so keyblocks overlap; each pool job
  // owns its keyblock's segment exclusively (lazy materialization
  // included), and the batch barrier below orders every write before
  // the fault check and the commit phase, exactly as the sequential
  // path does.
  std::uint64_t producedRecords = 0;
  std::uint64_t producedRepresents = 0;
  for (const Segment& seg : produced) {
    producedRecords += seg.header().numRecords;
    producedRepresents += seg.header().represents;
  }
  attemptSpan.setRecords(producedRecords);
  attemptSpan.setRepresents(producedRepresents);
  std::vector<std::shared_ptr<const Segment>> localSegments(numReduces);
  std::vector<std::uint64_t> localSegBytes;
  std::uint64_t bytesSpilled = 0;
  if (eagerSpill() && spillPool != nullptr) {
    SpillWriterPool::Batch batch;
    std::atomic<std::uint64_t> batchBytes{0};
    for (std::uint32_t kb = 0; kb < numReduces; ++kb) {
      Segment* seg = &produced[kb];
      spillPool->submit(
          batch, [this, seg, m, kb, attempt,
                  &batchBytes](std::vector<std::byte>& encodeBuf) {
            // Pool threads are not workers: install the recorder per
            // job so encode/write spans land on the pool thread's lane.
            obs::ScopedRecorder poolScope(recorder.get());
            {
              obs::SpanScope enc(obs::Phase::kSpillEncode,
                                 obs::TaskSide::kMap, m, attempt, kb);
              if (spec.compressSpill) {
                seg->serializeCompressedInto(encodeBuf, spec.keySpace);
                compressedSpillBytes.fetch_add(encodeBuf.size(),
                                               std::memory_order_relaxed);
              } else {
                seg->serializeInto(encodeBuf);
              }
              enc.setBytes(encodeBuf.size());
              enc.setRecords(seg->header().numRecords);
            }
            batchBytes.fetch_add(encodeBuf.size(), std::memory_order_relaxed);
            obs::SpanScope write(obs::Phase::kSpillWrite, obs::TaskSide::kMap,
                                 m, attempt, kb);
            write.setBytes(encodeBuf.size());
            spillSegmentAttempt(m, kb, attempt, encodeBuf);
          });
    }
    batch.wait();  // rethrows the first encode/write failure
    bytesSpilled = batchBytes.load(std::memory_order_relaxed);
  } else if (eagerSpill()) {
    std::vector<std::byte> spillBuf;  // one encode buffer for all keyblocks
    for (std::uint32_t kb = 0; kb < numReduces; ++kb) {
      // Persist map output to attempt-scoped temp files; nothing is
      // visible under the committed names until the attempt commits
      // below (Hadoop commits map output files atomically with the
      // task).
      {
        obs::SpanScope enc(obs::Phase::kSpillEncode, obs::TaskSide::kMap, m,
                           attempt, kb);
        if (spec.compressSpill) {
          produced[kb].serializeCompressedInto(spillBuf, spec.keySpace);
          compressedSpillBytes.fetch_add(spillBuf.size(),
                                         std::memory_order_relaxed);
        } else {
          produced[kb].serializeInto(spillBuf);
        }
        enc.setBytes(spillBuf.size());
        enc.setRecords(produced[kb].header().numRecords);
      }
      bytesSpilled += spillBuf.size();
      obs::SpanScope write(obs::Phase::kSpillWrite, obs::TaskSide::kMap, m,
                           attempt, kb);
      write.setBytes(spillBuf.size());
      spillSegmentAttempt(m, kb, attempt, spillBuf);
    }
  } else {
    // In-memory and hybrid modes publish handles. The resident
    // footprints are measured here, outside the engine mutex — the
    // locked commit section below only charges the precomputed sizes.
    localSegBytes.assign(numReduces, 0);
    for (std::uint32_t kb = 0; kb < numReduces; ++kb) {
      localSegments[kb] =
          std::make_shared<const Segment>(std::move(produced[kb]));
      localSegBytes[kb] = localSegments[kb]->residentBytes();
    }
  }

  attemptSpan.setBytes(bytesSpilled);

  // Injected failure: the attempt did its work (including any temp
  // spill writes) but dies before committing anything.
  if (spec.faultPlan.shouldFail(TaskKind::kMap, m, attempt)) {
    attemptSpan.fail();
    if (eagerSpill()) {
      for (std::uint32_t kb = 0; kb < numReduces; ++kb) {
        discardSegmentAttemptFile(spec.spillDirectory, m, kb, attempt);
      }
    }
    double tFail = now();
    std::scoped_lock lock(mtx);
    ++result.mapFailures;
    recordEvent(TaskEvent::Kind::kMapStart, m, tStart, attempt);
    recordEvent(TaskEvent::Kind::kMapFail, m, tFail, attempt);
    runningMapSet[m] = false;
    --runningMaps;
    if (attempt >= spec.faultPlan.maxAttempts) {
      if (!firstError) {
        firstError = std::make_exception_ptr(
            JobError(TaskKind::kMap, m, attempt, spec.faultPlan.maxAttempts));
      }
    } else {
      markMapEligible(m);  // retry as the next attempt
    }
    cv.notify_all();
    return;
  }

  // Commit phase. Spill mode publishes every keyblock file with an
  // atomic rename FIRST: once segAvail flips below, any reduce may open
  // the committed path lock-free, and a reader still holding the
  // previous attempt's file (recovery races) keeps its old inode.
  if (eagerSpill()) {
    for (std::uint32_t kb = 0; kb < numReduces; ++kb) {
      // One commit span per keyblock, carrying the segment's count
      // annotation: the trace-side proof a reduce may start (the
      // gating invariant compares reduce-attempt starts against these).
      obs::SpanScope commit(obs::Phase::kRenameCommit, obs::TaskSide::kMap, m,
                            attempt, kb);
      commit.setRecords(produced[kb].header().numRecords);
      commit.setRepresents(produced[kb].header().represents);
      commitSegmentFile(spec.spillDirectory, m, kb, attempt);
    }
  }
  double tEnd = now();

  {
    std::scoped_lock lock(mtx);
    recordEvent(TaskEvent::Kind::kMapStart, m, tStart, attempt);
    recordEvent(TaskEvent::Kind::kMapEnd, m, tEnd, attempt);
    result.shuffleBytes += bytesSpilled;
    if (!eagerSpill()) {
      // Publication is a pointer flip per keyblock — no data copy runs
      // under the engine mutex. The commit spans are near-zero-width but
      // keep the schema uniform across shuffle modes: they end inside
      // this critical section, and any gated reduce starts only after a
      // later acquire of mtx, so commit-span end <= reduce-span start.
      for (std::uint32_t kb = 0; kb < numReduces; ++kb) {
        obs::SpanScope commit(obs::Phase::kRenameCommit, obs::TaskSide::kMap,
                              m, attempt, kb);
        commit.setRecords(localSegments[kb]->header().numRecords);
        commit.setRepresents(localSegments[kb]->header().represents);
        // Charge the published segment's resident footprint; a recovery
        // republish first releases whatever the replaced handle charged
        // (an evicted slot has charge 0, so this is a no-op there).
        if (segCharge[m][kb] != 0) {
          pagePool->release(segCharge[m][kb]);
          segCharge[m][kb] = 0;
        }
        if (localSegBytes[kb] > 0) {
          segCharge[m][kb] = pagePool->charge(localSegBytes[kb]);
        }
        segments[m][kb] = std::move(localSegments[kb]);
      }
      publishedAttempt[m] = attempt;
    }
    mapDone[m] = true;
    // Dependency accounting: only a false->true availability transition
    // satisfies a dependency, so a recovery re-run of this map cannot
    // double-decrement a keyblock that already counted its first run.
    for (std::uint32_t kb : mapToReduces[m]) {
      if (segAvail[m][kb]) continue;
      segAvail[m][kb] = true;
      if (remainingDeps[kb] > 0) {
        --remainingDeps[kb];
        if (remainingDeps[kb] == 0 && reduceScheduled[kb] &&
            !reduceRunnableFlag[kb] && !reduceDone[kb] &&
            evictingCount[kb] == 0) {
          reduceRunnableFlag[kb] = true;
          runnableReduces.push_back(kb);
        }
      }
    }
    // Segments for keyblocks outside this map's dependency sets exist too
    // (they are empty in SIDR mode); mark them present for stock fetches.
    for (std::uint32_t kb = 0; kb < numReduces; ++kb) segAvail[m][kb] = true;
    runningMapSet[m] = false;
    --runningMaps;
    cv.notify_all();
  }

  // With a budget, publication is the moment resident bytes grow; shed
  // pressure before this worker picks up its next task. Runs with no
  // locks held — selection and finalize take mtx internally.
  if (budgetEnabled()) maybePressureSpill();
}

void Engine::Impl::maybePressureSpill() {
  // Pressure-driven eviction (hybrid mode): when the page pool crosses
  // its high-water mark, encode the coldest committed keyblocks to the
  // spill directory — through the SAME attempt-file + atomic-rename
  // protocol eager spill uses — then drop their in-memory handles and
  // reclaim the pages. "Coldest" = largest priorityOrder position (its
  // reduce runs last, so its pages stay reclaimed longest), ties broken
  // toward the larger charge.
  //
  // Safety: a keyblock with an eviction in flight is never pushed
  // runnable (every push site gates on evictingCount), and a keyblock
  // that is already runnable/running/done is never selected — so no
  // lock-free reduce fetch can race the handle reset. The finalize step
  // re-checks the gated push under mtx.
  while (pagePool->overHighWater()) {
    struct Victim {
      std::uint32_t m = 0;
      std::uint32_t kb = 0;
      std::uint32_t attempt = 0;
      std::shared_ptr<const Segment> seg;
      std::uint64_t charge = 0;
    };
    std::vector<Victim> victims;
    {
      std::scoped_lock lock(mtx);
      std::vector<Victim> candidates;
      for (std::uint32_t m = 0; m < numMaps; ++m) {
        for (std::uint32_t kb = 0; kb < numReduces; ++kb) {
          if (!segAvail[m][kb] || segEvicting[m][kb]) continue;
          if (reduceRunnableFlag[kb] || reduceDone[kb]) continue;
          const std::shared_ptr<const Segment>& seg = segments[m][kb];
          if (seg == nullptr || seg->header().numRecords == 0) continue;
          if (segCharge[m][kb] == 0) continue;  // nothing to reclaim
          candidates.push_back(
              Victim{m, kb, publishedAttempt[m], seg, segCharge[m][kb]});
        }
      }
      std::sort(candidates.begin(), candidates.end(),
                [this](const Victim& a, const Victim& b) {
                  if (posOf[a.kb] != posOf[b.kb]) {
                    return posOf[a.kb] > posOf[b.kb];
                  }
                  return a.charge > b.charge;
                });
      const std::uint64_t target = pagePool->lowWaterBytes();
      std::uint64_t projected = pagePool->residentBytes();
      for (Victim& v : candidates) {
        if (projected <= target) break;
        segEvicting[v.m][v.kb] = true;
        ++evictingCount[v.kb];
        projected -= std::min(projected, v.charge);
        victims.push_back(std::move(v));
      }
    }
    if (victims.empty()) return;  // over budget but nothing evictable

    // Encode + write the attempt files outside the lock, overlapping
    // keyblocks on the spill-writer pool when one exists. Renames run
    // only after every write succeeded.
    std::exception_ptr error;
    auto writeOne = [this](const Victim& v, std::vector<std::byte>& buf) {
      obs::SpanScope span(obs::Phase::kPressureSpill, obs::TaskSide::kMap, v.m,
                          v.attempt, v.kb);
      span.setRecords(v.seg->header().numRecords);
      span.setRepresents(v.seg->header().represents);
      if (spec.compressSpill) {
        v.seg->serializeCompressedInto(buf, spec.keySpace);
        compressedSpillBytes.fetch_add(buf.size(), std::memory_order_relaxed);
      } else {
        v.seg->serializeInto(buf);
      }
      span.setBytes(buf.size());
      spillSegmentAttempt(v.m, v.kb, v.attempt, buf);
    };
    try {
      if (spillPool != nullptr) {
        SpillWriterPool::Batch batch;
        for (const Victim& v : victims) {
          spillPool->submit(batch,
                            [this, &v, &writeOne](std::vector<std::byte>& buf) {
                              obs::ScopedRecorder poolScope(recorder.get());
                              writeOne(v, buf);
                            });
        }
        batch.wait();
      } else {
        std::vector<std::byte> buf;
        for (const Victim& v : victims) writeOne(v, buf);
      }
      for (const Victim& v : victims) {
        // The eviction commit reuses the publication span schema; the
        // gating checker takes the EARLIEST commit per (map, keyblock),
        // so the original publication span keeps proving reduce starts,
        // and the tally checker reads the same represents off this one.
        obs::SpanScope commit(obs::Phase::kRenameCommit, obs::TaskSide::kMap,
                              v.m, v.attempt, v.kb);
        commit.setRecords(v.seg->header().numRecords);
        commit.setRepresents(v.seg->header().represents);
        commitSegmentFile(spec.spillDirectory, v.m, v.kb, v.attempt);
      }
    } catch (...) {
      error = std::current_exception();
    }

    {
      std::scoped_lock lock(mtx);
      for (const Victim& v : victims) {
        segEvicting[v.m][v.kb] = false;
        --evictingCount[v.kb];
        // Pointer-equality guard: a recovery republish may have replaced
        // the handle (and re-charged the slot) while the file was being
        // written; then the slot's charge belongs to the NEW segment and
        // must stay, and the stale file is simply never read (the fetch
        // sees the fresh handle).
        if (!error && segments[v.m][v.kb] == v.seg) {
          segments[v.m][v.kb] = nullptr;
          if (segCharge[v.m][v.kb] != 0) {
            pagePool->release(segCharge[v.m][v.kb]);
            segCharge[v.m][v.kb] = 0;
          }
          pressureSpills.fetch_add(1, std::memory_order_relaxed);
        }
        if (evictingCount[v.kb] == 0 && remainingDeps[v.kb] == 0 &&
            reduceScheduled[v.kb] && !reduceRunnableFlag[v.kb] &&
            !reduceDone[v.kb]) {
          reduceRunnableFlag[v.kb] = true;
          runnableReduces.push_back(v.kb);
        }
      }
      if (error && !firstError) firstError = error;
      cv.notify_all();
    }
    if (error) return;
  }
}

void Engine::Impl::runReduce(std::uint32_t kb) {
  std::uint32_t attempt;
  {
    std::scoped_lock lock(mtx);
    attempt = ++reduceAttempts[kb];
  }
  obs::SpanScope attemptSpan(obs::Phase::kTaskAttempt, obs::TaskSide::kReduce,
                             kb, attempt, kb);
  double tStart = now();

  // Injected failure: simulate this reduce attempt dying after starting
  // but before committing output.
  if (spec.faultPlan.shouldFail(TaskKind::kReduce, kb, attempt)) {
    attemptSpan.fail();
    double tFail = now();
    std::scoped_lock lock(mtx);
    ++result.reduceFailures;
    recordEvent(TaskEvent::Kind::kReduceStart, kb, tStart, attempt);
    recordEvent(TaskEvent::Kind::kReduceFail, kb, tFail, attempt);
    reduceRunnableFlag[kb] = false;
    --runningReduces;
    if (attempt >= spec.faultPlan.maxAttempts) {
      if (!firstError) {
        firstError = std::make_exception_ptr(JobError(
            TaskKind::kReduce, kb, attempt, spec.faultPlan.maxAttempts));
      }
      cv.notify_all();
      return;
    }
    if (spec.recovery == RecoveryModel::kRecomputeDeps) {
      // Intermediate data was volatile: drop this keyblock's segments
      // and re-execute exactly the I_l map subset (paper section 6).
      for (std::uint32_t m : deps[kb]) {
        if (segAvail[m][kb]) {
          segAvail[m][kb] = false;
          ++remainingDeps[kb];
        }
        mapDone[m] = false;
        markMapEligible(m);
      }
      if (remainingDeps[kb] == 0 && evictingCount[kb] == 0) {
        // nothing was available yet
        reduceRunnableFlag[kb] = true;
        runnableReduces.push_back(kb);
      }
    } else if (evictingCount[kb] == 0) {
      // Persisted intermediate data: retry immediately, re-fetch all.
      // (An in-flight eviction re-queues the keyblock when it
      // finalizes; it cannot actually occur here — evictions never
      // start on a runnable keyblock — but the gate keeps every push
      // site uniform.)
      reduceRunnableFlag[kb] = true;
      runnableReduces.push_back(kb);
    }
    cv.notify_all();
    return;
  }

  // Fetch phase. Stock Hadoop contacts every map task; SIDR contacts
  // only the maps in I_l (Table 3's connection asymmetry).
  std::vector<std::uint32_t> fetchSet;
  if (isSidr()) {
    fetchSet = deps[kb];
  } else {
    fetchSet.resize(numMaps);
    for (std::uint32_t m = 0; m < numMaps; ++m) fetchSet[m] = m;
  }

  // The entire fetch runs WITHOUT the engine mutex, in both modes:
  // segments are immutable once published, and this reduce only became
  // runnable after observing (under mtx) that every fetched dependency
  // committed, which ordered those publications before these reads.
  std::vector<Segment> fetched;                          // eager spill mode
  std::vector<std::shared_ptr<const Segment>> handles;   // resident segments
  std::vector<std::unique_ptr<SegmentStream>> streams;   // evicted (hybrid)
  // Which source each non-empty input came from, in fetchSet order —
  // the merger consumes one ordered input sequence regardless of kind,
  // so resident and evicted inputs merge bit-identically.
  std::vector<bool> sourceIsStream;
  std::uint64_t tally = 0;
  std::uint64_t connections = 0;
  std::uint64_t nonEmpty = 0;
  std::uint64_t bytesFetched = 0;
  {
    std::scoped_lock lock(mtx);
    recordEvent(TaskEvent::Kind::kReduceStart, kb, tStart, attempt);
  }
  double tFetchStart = now();
  std::uint64_t recordsFetched = 0;
  {
    obs::SpanScope fetchSpan(obs::Phase::kFetch, obs::TaskSide::kReduce, kb,
                             attempt, kb);
    if (eagerSpill()) {
      // The header-only read suffices for the annotation tally; only
      // non-empty segments are fully read and decoded.
      for (std::uint32_t m : fetchSet) {
        ++connections;
        SegmentHeader h = peekSpilledHeader(m, kb);
        bytesFetched += Segment::kHeaderBytes;
        tally += h.represents;
        recordsFetched += h.numRecords;
        if (h.numRecords > 0) {
          ++nonEmpty;
          fetched.push_back(loadSpilledSegment(m, kb, bytesFetched));
          // Linear keys never travel on the uncompressed wire; rebuild
          // the cache so spilled segments merge on u64s like in-memory
          // ones (the compressed decoder already restored them).
          if (spec.keySpace.rank() > 0 && !fetched.back().hasLinearKeys()) {
            fetched.back().computeLinearKeys(spec.keySpace);
          }
        }
      }
    } else {
      // Zero-copy fetch: acquiring a published handle is a shared_ptr
      // copy; the header is read in-struct. No serialize/deserialize
      // round trip, no data copy, no lock. In hybrid mode a null slot
      // means the segment was evicted under pressure: its committed
      // file is streamed back through a bounded window during the
      // merge, never fully materialized.
      handles.reserve(fetchSet.size());
      for (std::uint32_t m : fetchSet) {
        ++connections;
        std::shared_ptr<const Segment> seg = segments[m][kb];
        if (seg != nullptr) {
          tally += seg->header().represents;
          recordsFetched += seg->header().numRecords;
          if (seg->header().numRecords > 0) {
            ++nonEmpty;
            handles.push_back(std::move(seg));
            sourceIsStream.push_back(false);
          }
        } else if (budgetEnabled()) {
          auto stream = std::make_unique<SegmentStream>(
              segmentPath(m, kb), spec.mergeWindowBytes, spec.compressSpill,
              spec.keySpace);
          const SegmentHeader& h = stream->header();
          tally += h.represents;
          recordsFetched += h.numRecords;
          if (h.numRecords > 0) {
            ++nonEmpty;
            streams.push_back(std::move(stream));
            sourceIsStream.push_back(true);
          } else {
            bytesFetched += stream->bytesRead();
          }
        } else {
          throw std::logic_error("Engine: reduce fetched unpublished segment");
        }
      }
    }
    fetchSpan.setBytes(bytesFetched);
    fetchSpan.setRecords(recordsFetched);
    // The reduce-side annotation tally rides on the fetch span, so the
    // trace alone can cross-check it against the commit spans' sums.
    fetchSpan.setRepresents(tally);
  }
  double tFetchEnd = now();

  // Merge/group/reduce (outside the lock: pure local computation). One
  // ordered input sequence feeds the merger whatever the source kind —
  // materialized spill loads, resident handles (merged straight from
  // their packed form), or bounded streaming cursors — and the record
  // tally comes off the headers, so no input is materialized just to be
  // counted.
  std::vector<SegmentMerger::Input> inputs;
  inputs.reserve(fetched.size() + handles.size() + streams.size());
  std::unique_ptr<SegmentMerger> merger;
  {
    obs::SpanScope mergeSpan(obs::Phase::kMerge, obs::TaskSide::kReduce, kb,
                             attempt, kb);
    if (eagerSpill()) {
      for (const Segment& s : fetched) {
        SegmentMerger::Input in;
        in.segment = &s;
        inputs.push_back(in);
      }
    } else {
      std::size_t nextHandle = 0;
      std::size_t nextStream = 0;
      for (const bool isStream : sourceIsStream) {
        SegmentMerger::Input in;
        if (isStream) {
          in.stream = streams[nextStream++].get();
        } else {
          in.segment = handles[nextHandle++].get();
        }
        inputs.push_back(in);
      }
    }
    merger = std::make_unique<SegmentMerger>(
        std::span<const SegmentMerger::Input>(inputs));
    mergeSpan.setRecords(recordsFetched);
  }
  auto reducer = spec.reducerFactory();
  VectorReduceContext out;
  std::vector<KeyValue> outRecords;
  {
    obs::SpanScope reduceSpan(obs::Phase::kReduce, obs::TaskSide::kReduce, kb,
                              attempt, kb);
    merger->forEachGroup([&](const nd::Coord& key,
                             std::span<const Value* const> values,
                             std::uint64_t /*groupRepresents*/) {
      reducer->reduce(key, values, out);
    });
    outRecords = out.take();
    reduceSpan.setRecords(outRecords.size());
  }
  // Streamed inputs read their windows lazily during the merge; fold
  // their I/O into the shuffle accounting now that they are drained.
  for (const auto& st : streams) bytesFetched += st->bytesRead();

  // Linearize the output keys OUTSIDE the lock (reducers usually emit
  // the group key, which lies inside keySpace; an out-of-space emission
  // just forfeits the collectAll fast merge rather than failing).
  std::vector<std::uint64_t> outLinear;
  if (spec.keySpace.rank() > 0) {
    outLinear.reserve(outRecords.size());
    for (const KeyValue& kv : outRecords) {
      bool inSpace = kv.key.rank() == spec.keySpace.rank();
      for (std::size_t d = 0; inSpace && d < spec.keySpace.rank(); ++d) {
        inSpace = kv.key[d] >= 0 && kv.key[d] < spec.keySpace[d];
      }
      if (!inSpace) {
        outLinear.clear();
        break;
      }
      outLinear.push_back(
          static_cast<std::uint64_t>(nd::linearize(kv.key, spec.keySpace)));
    }
  }

  attemptSpan.setBytes(bytesFetched);
  attemptSpan.setRecords(outRecords.size());
  attemptSpan.setRepresents(tally);

  double tEnd = now();
  // Declared before the lock so the commit span covers the whole locked
  // publication and its end still falls inside the attempt span.
  obs::SpanScope commitSpan(obs::Phase::kOutputCommit, obs::TaskSide::kReduce,
                            kb, attempt, kb);
  std::scoped_lock lock(mtx);
  result.shuffleConnections += connections;
  result.nonEmptyConnections += nonEmpty;
  result.shuffleBytes += bytesFetched;
  result.shuffleFetchSeconds += tFetchEnd - tFetchStart;
  ReduceOutput& ro = result.outputs[kb];
  ro.keyblock = kb;
  ro.records = std::move(outRecords);
  ro.linearKeys = std::move(outLinear);
  ro.availableAt = tEnd;
  ro.annotationTally = tally;
  commitSpan.setRecords(ro.records.size());
  if (!spec.expectedRepresents.empty() &&
      tally != spec.expectedRepresents[kb]) {
    ++result.annotationViolations;
  }
  result.recordsPerReducer[kb] = recordsFetched;
  recordEvent(TaskEvent::Kind::kReduceEnd, kb, tEnd, attempt);
  if (budgetEnabled()) {
    // This keyblock's inputs are consumed for good (reduceDone blocks
    // any further fetch or eviction): drop the handles and give their
    // pages back to the pool. The actual frees run when this frame's
    // local references unwind, outside the mutex.
    for (std::uint32_t m : fetchSet) {
      if (segCharge[m][kb] != 0) {
        pagePool->release(segCharge[m][kb]);
        segCharge[m][kb] = 0;
      }
      segments[m][kb] = nullptr;
    }
  }
  reduceDone[kb] = true;
  ++completedReduces;
  --runningReduces;
  if (isSidr()) {
    --scheduledActive;
    scheduleReducesLocked();
  }
  cv.notify_all();
}

void Engine::Impl::workerLoop() {
  // Install the job's recorder for every span recorded on this thread,
  // and fold this thread's SortStats delta into the job-wide totals on
  // the way out — workers are the only threads that sort segments (the
  // spill pool only encodes and writes), so summing per-worker deltas
  // surfaces the formerly thread-local counters in JobResult.
  obs::ScopedRecorder scoped(recorder.get());
  const SortStats sortBaseline = sortStats();
  workerTasks();
  const SortStats delta = sortStats().minus(sortBaseline);
  std::scoped_lock lock(mtx);
  result.sortTotals.add(delta);
}

void Engine::Impl::workerTasks() {
  std::unique_lock lock(mtx);
  while (true) {
    if (firstError) return;
    if (completedReduces == numReduces) return;
    // Reduce-first: a runnable reduce has its data dependencies met and
    // holds a slot already.
    if (!runnableReduces.empty() && runningReduces < spec.reduceSlots) {
      std::uint32_t kb = runnableReduces.front();
      runnableReduces.pop_front();
      ++runningReduces;
      lock.unlock();
      try {
        runReduce(kb);
      } catch (...) {
        std::scoped_lock elock(mtx);
        if (!firstError) firstError = std::current_exception();
        --runningReduces;
        // Release the SIDR slot this reduce held; without this a failed
        // reduce counts against scheduledActive forever and wedges slot
        // accounting.
        if (isSidr() && reduceScheduled[kb] && !reduceDone[kb]) {
          reduceScheduled[kb] = false;
          --scheduledActive;
          scheduleReducesLocked();
        }
        cv.notify_all();
      }
      lock.lock();
      continue;
    }
    if (!eligibleMaps.empty() && runningMaps < spec.mapSlots) {
      std::uint32_t m = eligibleMaps.front();
      eligibleMaps.pop_front();
      mapQueued[m] = false;
      runningMapSet[m] = true;
      ++runningMaps;
      lock.unlock();
      try {
        runMap(m);
      } catch (...) {
        std::scoped_lock elock(mtx);
        if (!firstError) firstError = std::current_exception();
        runningMapSet[m] = false;
        --runningMaps;
        cv.notify_all();
      }
      lock.lock();
      continue;
    }
    cv.wait(lock);
  }
}

JobResult Engine::Impl::run() {
  numMaps = static_cast<std::uint32_t>(spec.splits.size());
  numReduces = spec.numReducers;
  if (spillEnabled()) {
    std::filesystem::create_directories(spec.spillDirectory);
    if (spec.spillWriters > 1 && numReduces > 0) {
      // No point running more writers than keyblocks: each job covers
      // one (map, keyblock) file and a map attempt submits numReduces
      // of them at once.
      spillPool = std::make_unique<SpillWriterPool>(
          std::min(spec.spillWriters, numReduces));
    }
  }
  mapQueued.assign(numMaps, false);
  mapEverEligible.assign(numMaps, false);
  mapDone.assign(numMaps, false);
  runningMapSet.assign(numMaps, false);
  mapAttempts.assign(numMaps, 0);
  segments.assign(numMaps,
                  std::vector<std::shared_ptr<const Segment>>(numReduces));
  segAvail.assign(numMaps, std::vector<bool>(numReduces, false));
  // The page pool exists in every mode (budget 0 = unlimited): it is
  // also the job-wide peak-residency meter.
  pagePool = std::make_unique<SegmentPagePool>(spec.memoryBudgetBytes);
  segCharge.assign(numMaps, std::vector<std::uint64_t>(numReduces, 0));
  segEvicting.assign(numMaps, std::vector<bool>(numReduces, false));
  evictingCount.assign(numReduces, 0);
  publishedAttempt.assign(numMaps, 0);
  reduceScheduled.assign(numReduces, false);
  reduceRunnableFlag.assign(numReduces, false);
  reduceDone.assign(numReduces, false);
  reduceAttempts.assign(numReduces, 0);
  result.outputs.resize(numReduces);
  result.recordsPerReducer.assign(numReduces, 0);

  // Resolve dependency sets: stock mode depends on every split (the
  // global barrier); SIDR uses the provided I_l sets.
  deps.resize(numReduces);
  for (std::uint32_t kb = 0; kb < numReduces; ++kb) {
    if (isSidr()) {
      deps[kb] = spec.reduceDeps[kb];
    } else {
      deps[kb].resize(numMaps);
      for (std::uint32_t m = 0; m < numMaps; ++m) deps[kb][m] = m;
    }
  }
  mapToReduces.assign(numMaps, {});
  remainingDeps.assign(numReduces, 0);
  for (std::uint32_t kb = 0; kb < numReduces; ++kb) {
    remainingDeps[kb] = static_cast<std::uint32_t>(deps[kb].size());
    for (std::uint32_t m : deps[kb]) mapToReduces[m].push_back(kb);
  }

  priorityOrder.resize(numReduces);
  if (spec.reducePriority.empty()) {
    for (std::uint32_t kb = 0; kb < numReduces; ++kb) priorityOrder[kb] = kb;
  } else {
    priorityOrder = spec.reducePriority;
  }
  posOf.assign(numReduces, 0);
  for (std::uint32_t i = 0; i < numReduces; ++i) posOf[priorityOrder[i]] = i;

  start = Clock::now();
  if (spec.recordTrace) {
    // Shares the event-log epoch, so span timestamps and TaskEvent
    // seconds are directly comparable.
    recorder = std::make_unique<obs::TraceRecorder>(start);
  }
  {
    std::scoped_lock lock(mtx);
    if (isSidr()) {
      // SIDR inverts scheduling: reduces first, maps become eligible as
      // a side effect.
      scheduleReducesLocked();
    } else {
      // Stock: all maps schedulable at once; reduces are all "scheduled"
      // (they hold slots and wait at the barrier).
      for (std::uint32_t m = 0; m < numMaps; ++m) markMapEligible(m);
      for (std::uint32_t kb = 0; kb < numReduces; ++kb) {
        reduceScheduled[kb] = true;
        if (remainingDeps[kb] == 0) {  // degenerate zero-split job
          reduceRunnableFlag[kb] = true;
          runnableReduces.push_back(kb);
        }
      }
    }
  }

  std::uint32_t nThreads = std::max(1u, spec.numThreads);
  {
    std::vector<std::jthread> workers;
    workers.reserve(nThreads);
    for (std::uint32_t i = 0; i < nThreads; ++i) {
      workers.emplace_back([this] { workerLoop(); });
    }
    // joined by jthread destructors
  }
  // Join the spill pool before collecting: pool threads record spans
  // too, and destruction guarantees their logs are final.
  spillPool.reset();
  if (firstError) std::rethrow_exception(firstError);

  result.peakResidentSegmentBytes = pagePool->peakResidentBytes();
  result.pressureSpillEvents = pressureSpills.load(std::memory_order_relaxed);
  result.spillCompressedBytes =
      compressedSpillBytes.load(std::memory_order_relaxed);
  result.totalSeconds = now();
  result.firstResultSeconds = result.totalSeconds;
  for (const ReduceOutput& out : result.outputs) {
    result.firstResultSeconds =
        std::min(result.firstResultSeconds, out.availableAt);
  }
  if (recorder != nullptr) {
    result.trace = recorder->collect();
    // Absorb the scattered JobResult scalars and the sort totals into
    // the counter registry so consumers read one uniform surface.
    obs::Trace& t = result.trace;
    t.addCounter("shuffle.connections", result.shuffleConnections);
    t.addCounter("shuffle.nonEmptyConnections", result.nonEmptyConnections);
    t.addCounter("shuffle.bytes", result.shuffleBytes);
    t.addCounter("shuffle.fetchMicros",
                 static_cast<std::uint64_t>(result.shuffleFetchSeconds * 1e6));
    t.addCounter("job.annotationViolations", result.annotationViolations);
    t.addCounter("job.mapsReExecuted", result.mapsReExecuted);
    t.addCounter("job.mapFailures", result.mapFailures);
    t.addCounter("job.reduceFailures", result.reduceFailures);
    t.addCounter("sort.sortedSkips", result.sortTotals.sortedSkips);
    t.addCounter("sort.comparisonSorts", result.sortTotals.comparisonSorts);
    t.addCounter("sort.radixSorts", result.sortTotals.radixSorts);
    t.addCounter("sort.radixPasses", result.sortTotals.radixPasses);
    t.addCounter("sort.radixPassesSkipped",
                 result.sortTotals.radixPassesSkipped);
    t.addCounter("mem.peakResidentSegmentBytes",
                 result.peakResidentSegmentBytes);
    t.addCounter("mem.pressureSpillEvents", result.pressureSpillEvents);
    t.addCounter("mem.spillCompressedBytes", result.spillCompressedBytes);
  }
  return std::move(result);
}

JobResult Engine::run() {
  Impl impl(spec_);
  return impl.run();
}

}  // namespace sidr::mr
