#include "mapreduce/engine.hpp"

#include <algorithm>
#include <span>
#include <thread>
#include <vector>

#include "mapreduce/job_context.hpp"

namespace sidr::mr {

std::vector<KeyValue> JobResult::collectAll() const {
  // Each reducer's output is already key-sorted (the merger iterates
  // keys ascending), so a k-way merge over the outputs suffices — no
  // full re-sort of the concatenation, and no per-output staging
  // copies: SegmentMerger streams straight out of the ReduceOutput
  // vectors and the result is filled through one exact-size reserve.
  std::size_t total = 0;
  bool allLinear = true;
  for (const ReduceOutput& out : outputs) {
    total += out.records.size();
    if (!out.records.empty() && out.linearKeys.size() != out.records.size()) {
      // Any merged output lacking cached linear keys drops every cursor
      // to Coord order, which the u64 order matches exactly (DESIGN.md
      // section 11).
      allLinear = false;
    }
  }
  std::vector<SegmentMerger::Input> inputs;
  inputs.reserve(outputs.size());
  for (const ReduceOutput& out : outputs) {
    SegmentMerger::Input in;
    in.run = &out.records;
    in.runLin = allLinear ? out.linearKeys.data() : nullptr;
    inputs.push_back(in);
  }
  SegmentMerger merger{std::span<const SegmentMerger::Input>(inputs)};
  std::vector<KeyValue> all;
  all.reserve(total);
  merger.forEachRecord(
      [&all](const KeyValue& rec, std::uint64_t /*lin*/) { all.push_back(rec); });
  return all;
}

Engine::Engine(JobSpec spec) : spec_(std::move(spec)) {
  validateJobSpec(spec_);
}

JobResult Engine::run() {
  // The solo driver is now a thin shell over JobContext: one context,
  // numThreads workers spinning its claim loop, one finalize. The
  // multi-job EngineService drives the same context through the
  // external claim API instead.
  const std::uint32_t nThreads = std::max(1u, spec_.numThreads);
  JobContext ctx(std::move(spec_), /*sharedPool=*/nullptr);
  ctx.start();
  {
    std::vector<std::jthread> workers;
    workers.reserve(nThreads);
    for (std::uint32_t i = 0; i < nThreads; ++i) {
      workers.emplace_back([&ctx] { ctx.workerLoop(); });
    }
    // joined by jthread destructors
  }
  JobOutcome outcome = ctx.finalize();
  if (outcome.error) std::rethrow_exception(outcome.error);
  return std::move(outcome.result);
}

}  // namespace sidr::mr
