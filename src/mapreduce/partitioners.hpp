// Hadoop-style default partitioners over coordinate keys.
//
// Hadoop assigns an intermediate record to a keyblock by taking the
// modulo of the key's binary representation by the reducer count
// (paper section 3.1). For coordinate keys the natural "binary
// representation" is the row-major linearized index, which is exactly
// how patterned keys (e.g. every key even after a strided query) map
// onto a strict subset of reducers — the skew pathology of figure 13.
#pragma once

#include "mapreduce/interfaces.hpp"

namespace sidr::mr {

/// key -> linearize(key, keySpace) mod r. Faithful to Hadoop's
/// IntWritable.hashCode() % numReduceTasks for integer-encoded keys.
class ModuloPartitioner final : public Partitioner {
 public:
  explicit ModuloPartitioner(nd::Coord keySpaceShape)
      : keySpace_(keySpaceShape) {}

  std::uint32_t partition(const nd::Coord& key,
                          std::uint32_t numReducers) const override {
    auto linear = static_cast<std::uint64_t>(nd::linearize(key, keySpace_));
    return static_cast<std::uint32_t>(linear % numReducers);
  }

  /// Modulo scatters consecutive linear keys across reducers, so runs
  /// are always a single key — but the caller already linearized, so
  /// the duplicate linearize inside partition() is skipped. Requires
  /// (as the planner guarantees) that the construction shape equals the
  /// job's keySpace, making `linearKey` the same index partition() uses.
  std::uint32_t partitionRun(const nd::Coord& /*key*/, std::uint64_t linearKey,
                             std::uint32_t numReducers,
                             std::uint64_t& runEnd) const override {
    runEnd = linearKey + 1;
    return static_cast<std::uint32_t>(linearKey % numReducers);
  }

 private:
  nd::Coord keySpace_;
};

/// key -> hash(key bytes) mod r. A "good" hash variant: breaks key
/// patterns (no systematic skew) but still scatters each reducer's keys
/// across the whole space — balanced yet non-contiguous, so output stays
/// sparse. Used as an ablation between ModuloPartitioner and partition+.
class HashPartitioner final : public Partitioner {
 public:
  std::uint32_t partition(const nd::Coord& key,
                          std::uint32_t numReducers) const override {
    return static_cast<std::uint32_t>(key.hash() % numReducers);
  }
};

}  // namespace sidr::mr
