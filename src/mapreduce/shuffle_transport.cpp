#include "mapreduce/shuffle_transport.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <thread>
#include <utility>

#include "scifile/storage.hpp"

namespace sidr::mr {

const char* shuffleTransportName(ShuffleTransportKind kind) noexcept {
  switch (kind) {
    case ShuffleTransportKind::kInProcess:
      return "in-process";
    case ShuffleTransportKind::kSocket:
      return "socket";
    case ShuffleTransportKind::kFileServed:
      return "file-served";
  }
  return "?";
}

const char* transportFaultName(TransportFaultKind fault) noexcept {
  switch (fault) {
    case TransportFaultKind::kTruncatedFrame:
      return "truncated-frame";
    case TransportFaultKind::kCorruptFrame:
      return "corrupt-frame";
    case TransportFaultKind::kOversizedFrame:
      return "oversized-frame";
    case TransportFaultKind::kReorderedFrame:
      return "reordered-frame";
    case TransportFaultKind::kConnectionDrop:
      return "connection-drop";
    case TransportFaultKind::kTimeout:
      return "timeout";
  }
  return "?";
}

namespace wire {

namespace {

std::string errnoString(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

void putU32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xffu));
  }
}

void putU64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xffu));
  }
}

std::uint32_t getU32(const std::byte* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(p[i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t getU64(const std::byte* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(std::to_integer<std::uint8_t>(p[i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

void SpanByteSource::readExact(std::span<std::byte> buf) {
  if (buf.size() > bytes_.size() - pos_) {
    pos_ = bytes_.size();
    throw TransportError(TransportFaultKind::kTruncatedFrame,
                         "input ended mid-frame");
  }
  std::memcpy(buf.data(), bytes_.data() + pos_, buf.size());
  pos_ += buf.size();
}

SocketConnection::SocketConnection(std::uint16_t port,
                                   std::uint32_t timeoutMillis)
    : timeoutMillis_(timeoutMillis) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    throw TransportError(TransportFaultKind::kConnectionDrop,
                         errnoString("socket()"));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string msg =
        errnoString("connect(127.0.0.1)") + " port " + std::to_string(port);
    ::close(fd_);
    fd_ = -1;
    throw TransportError(TransportFaultKind::kConnectionDrop, msg);
  }
}

SocketConnection::SocketConnection(int fd, std::uint32_t timeoutMillis) noexcept
    : fd_(fd), timeoutMillis_(timeoutMillis) {}

SocketConnection::~SocketConnection() {
  if (fd_ >= 0) ::close(fd_);
}

void SocketConnection::readExact(std::span<std::byte> buf) {
  // The stall clock resets on every byte of progress: `timeoutMillis_`
  // bounds how long the PEER may go silent, not the whole transfer.
  constexpr std::uint32_t kTickMillis = 200;
  std::size_t got = 0;
  std::uint32_t stalled = 0;
  while (got < buf.size()) {
    if (stop_ != nullptr && stop_->load(std::memory_order_relaxed)) {
      throw TransportError(TransportFaultKind::kConnectionDrop,
                           "transport shutting down");
    }
    pollfd p{fd_, POLLIN, 0};
    const std::uint32_t wait =
        timeoutMillis_ == 0
            ? kTickMillis
            : std::min<std::uint32_t>(kTickMillis, timeoutMillis_ - stalled);
    const int r = ::poll(&p, 1, static_cast<int>(wait));
    if (r < 0) {
      if (errno == EINTR) continue;
      throw TransportError(TransportFaultKind::kConnectionDrop,
                           errnoString("poll()"));
    }
    if (r == 0) {
      stalled += wait;
      if (timeoutMillis_ != 0 && stalled >= timeoutMillis_) {
        throw TransportError(
            TransportFaultKind::kTimeout,
            "peer stalled " + std::to_string(stalled) + " ms");
      }
      continue;
    }
    const ssize_t n = ::recv(fd_, buf.data() + got, buf.size() - got, 0);
    if (n == 0) {
      throw TransportError(TransportFaultKind::kTruncatedFrame,
                           "peer closed mid-frame");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      throw TransportError(TransportFaultKind::kConnectionDrop,
                           errnoString("recv()"));
    }
    got += static_cast<std::size_t>(n);
    stalled = 0;
  }
}

void SocketConnection::writeAll(std::span<const std::byte> buf) {
  std::size_t sent = 0;
  while (sent < buf.size()) {
    const ssize_t n =
        ::send(fd_, buf.data() + sent, buf.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw TransportError(TransportFaultKind::kConnectionDrop,
                           errnoString("send()"));
    }
    sent += static_cast<std::size_t>(n);
  }
}

void appendFrame(std::vector<std::byte>& out,
                 std::span<const std::byte> payload) {
  putU32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
}

std::vector<std::byte> readFrame(ByteSource& src, FetchStats* stats) {
  std::array<std::byte, 4> lenBuf{};
  src.readExact(lenBuf);
  const std::uint32_t len = getU32(lenBuf.data());
  // Bound BEFORE the allocation: a corrupt length can fail the fetch
  // attempt but never drive a multi-gigabyte reserve.
  if (len > kFrameMax) {
    throw TransportError(TransportFaultKind::kOversizedFrame,
                         "frame payload " + std::to_string(len) +
                             " bytes exceeds the " +
                             std::to_string(kFrameMax) + "-byte bound");
  }
  std::vector<std::byte> payload(len);
  if (len > 0) src.readExact(payload);
  if (stats != nullptr) {
    ++stats->framesReceived;
    stats->wireBytes += 4 + static_cast<std::uint64_t>(len);
  }
  return payload;
}

std::vector<std::byte> encodeFetchRequest(std::uint32_t keyblock,
                                          std::span<const std::uint32_t> maps) {
  std::vector<std::byte> payload;
  payload.reserve(12 + 4 * maps.size());
  putU32(payload, kRequestMagic);
  putU32(payload, keyblock);
  putU32(payload, static_cast<std::uint32_t>(maps.size()));
  for (std::uint32_t m : maps) putU32(payload, m);
  std::vector<std::byte> framed;
  framed.reserve(4 + payload.size());
  appendFrame(framed, payload);
  return framed;
}

FetchRequestFrame decodeFetchRequest(std::span<const std::byte> payload) {
  if (payload.size() < 12) {
    throw TransportError(TransportFaultKind::kCorruptFrame,
                         "fetch request shorter than its fixed header");
  }
  if (getU32(payload.data()) != kRequestMagic) {
    throw TransportError(TransportFaultKind::kCorruptFrame,
                         "fetch request magic mismatch");
  }
  FetchRequestFrame req;
  req.keyblock = getU32(payload.data() + 4);
  const std::uint32_t count = getU32(payload.data() + 8);
  if (payload.size() != 12 + 4 * static_cast<std::size_t>(count)) {
    throw TransportError(TransportFaultKind::kCorruptFrame,
                         "fetch request map count disagrees with its size");
  }
  req.maps.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    req.maps.push_back(getU32(payload.data() + 12 + 4 * i));
  }
  return req;
}

std::vector<std::byte> encodeSegmentResponseHeader(
    const SegmentResponseHeader& header) {
  std::vector<std::byte> payload;
  payload.reserve(24);
  putU32(payload, kSegmentMagic);
  putU32(payload, header.mapTask);
  putU32(payload, header.keyblock);
  putU32(payload, header.flags);
  putU64(payload, header.totalBytes);
  return payload;
}

SegmentResponseHeader readSegmentResponse(ByteSource& src,
                                          std::uint32_t expectMap,
                                          std::uint32_t expectKeyblock,
                                          std::vector<std::byte>& payload,
                                          FetchStats* stats) {
  const std::vector<std::byte> head = readFrame(src, stats);
  if (head.size() != 24) {
    throw TransportError(TransportFaultKind::kCorruptFrame,
                         "segment response header is " +
                             std::to_string(head.size()) +
                             " bytes, expected 24");
  }
  if (getU32(head.data()) != kSegmentMagic) {
    throw TransportError(TransportFaultKind::kCorruptFrame,
                         "segment response magic mismatch");
  }
  SegmentResponseHeader h;
  h.mapTask = getU32(head.data() + 4);
  h.keyblock = getU32(head.data() + 8);
  h.flags = getU32(head.data() + 12);
  h.totalBytes = getU64(head.data() + 16);
  if (h.mapTask != expectMap || h.keyblock != expectKeyblock) {
    throw TransportError(
        TransportFaultKind::kReorderedFrame,
        "response for (map " + std::to_string(h.mapTask) + ", kb " +
            std::to_string(h.keyblock) + ") where (map " +
            std::to_string(expectMap) + ", kb " +
            std::to_string(expectKeyblock) + ") was requested");
  }
  if (h.totalBytes < Segment::kHeaderBytes) {
    throw TransportError(TransportFaultKind::kCorruptFrame,
                         "segment shorter than its 32-byte codec header");
  }
  if (h.totalBytes > kSegmentMax) {
    throw TransportError(TransportFaultKind::kOversizedFrame,
                         "segment totalBytes " + std::to_string(h.totalBytes) +
                             " exceeds the protocol bound");
  }
  payload.reserve(payload.size() + h.totalBytes);
  std::uint64_t got = 0;
  while (got < h.totalBytes) {
    const std::vector<std::byte> chunk = readFrame(src, stats);
    if (chunk.empty()) {
      throw TransportError(TransportFaultKind::kCorruptFrame,
                           "empty data frame inside a segment response");
    }
    if (got + chunk.size() > h.totalBytes) {
      throw TransportError(TransportFaultKind::kCorruptFrame,
                           "data frames overshoot the declared totalBytes");
    }
    payload.insert(payload.end(), chunk.begin(), chunk.end());
    got += chunk.size();
  }
  return h;
}

}  // namespace wire

namespace {

// ---- in-process backend: the historical fetch path behind the API ----

/// Byte-identical to the pre-transport fetch: eager mode reads the
/// 32-byte header then loads non-empty committed files; otherwise it
/// takes published handles lock-free (the caller IS the reduce thread
/// that observed the publications) and streams evicted slots back.
class InProcessTransport final : public ShuffleTransport {
 public:
  InProcessTransport(const TransportSource& source,
                     const TransportOptions& options)
      : source_(source), options_(options) {}

  ShuffleTransportKind kind() const noexcept override {
    return ShuffleTransportKind::kInProcess;
  }

  std::vector<FetchedSegment> fetch(const TransportFetchRequest& req,
                                    FetchStats& stats) override {
    if (options_.faultPlan != nullptr &&
        options_.faultPlan->shouldDropFetch(req.keyblock, req.fetchAttempt)) {
      throw TransportError(TransportFaultKind::kConnectionDrop,
                           "injected connection drop (fetch attempt " +
                               std::to_string(req.fetchAttempt) + ")");
    }
    std::vector<FetchedSegment> out;
    out.reserve(req.maps.size());
    if (source_.servesFromFiles()) {
      for (std::uint32_t m : req.maps) {
        FetchedSegment fs;
        fs.header = source_.peekCommittedHeader(m, req.keyblock);
        stats.bytesFetched += Segment::kHeaderBytes;
        if (fs.header.numRecords > 0) {
          fs.owned = std::make_unique<Segment>(
              source_.loadCommittedSegment(m, req.keyblock,
                                           stats.bytesFetched));
          // Linear keys never travel on the uncompressed wire; rebuild
          // the cache so spilled segments merge on u64s like in-memory
          // ones (the compressed decoder already restored them).
          if (source_.keySpace().rank() > 0 && !fs.owned->hasLinearKeys()) {
            fs.owned->computeLinearKeys(source_.keySpace());
          }
        }
        out.push_back(std::move(fs));
      }
      return out;
    }
    for (std::uint32_t m : req.maps) {
      FetchedSegment fs;
      std::shared_ptr<const Segment> seg =
          source_.residentSegment(m, req.keyblock);
      if (seg != nullptr) {
        fs.header = seg->header();
        if (fs.header.numRecords > 0) fs.handle = std::move(seg);
      } else if (source_.streamsEvicted()) {
        auto stream = std::make_unique<SegmentStream>(
            source_.committedSegmentPath(m, req.keyblock),
            source_.mergeWindowBytes(), source_.compressedFiles(),
            source_.keySpace());
        fs.header = stream->header();
        if (fs.header.numRecords > 0) {
          fs.stream = std::move(stream);
          // A hybrid stream reads its windows lazily during the merge;
          // its bytes fold into shuffleBytes once it drains.
          fs.countStreamBytes = true;
        } else {
          stats.bytesFetched += stream->bytesRead();
        }
      } else {
        throw std::logic_error("Engine: reduce fetched unpublished segment");
      }
      out.push_back(std::move(fs));
    }
    return out;
  }

 private:
  const TransportSource& source_;
  TransportOptions options_;
};

// ---- the localhost segment server (kSocket and kFileServed) ----

class SegmentServer {
 public:
  SegmentServer(ShuffleTransportKind kind, const TransportSource& source)
      : kind_(kind), source_(source) {
    listenFd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listenFd_ < 0) {
      throw std::runtime_error("ShuffleTransport: socket(): " +
                               std::string(std::strerror(errno)));
    }
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(0);  // ephemeral: no fixed-port collisions
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(listenFd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listenFd_, 64) != 0) {
      const std::string msg = std::strerror(errno);
      ::close(listenFd_);
      throw std::runtime_error("ShuffleTransport: bind/listen: " + msg);
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
        0) {
      const std::string msg = std::strerror(errno);
      ::close(listenFd_);
      throw std::runtime_error("ShuffleTransport: getsockname: " + msg);
    }
    port_ = ntohs(bound.sin_port);
    acceptThread_ = std::thread([this] { acceptLoop(); });
  }

  ~SegmentServer() { stop(); }

  std::uint16_t port() const noexcept { return port_; }

  void stop() {
    bool expected = false;
    if (!stopping_.compare_exchange_strong(expected, true)) {
      // Second caller still waits for the first stop to finish joining.
      std::scoped_lock lock(mtx_);
      return;
    }
    // Unblock the accept loop and every connection reader: shutdown
    // makes their polls return immediately (EOF / EINVAL), and the
    // stop flag turns the wake-up into a clean handler exit.
    ::shutdown(listenFd_, SHUT_RDWR);
    if (acceptThread_.joinable()) acceptThread_.join();
    std::vector<std::thread> handlers;
    {
      std::scoped_lock lock(mtx_);
      for (int fd : connFds_) ::shutdown(fd, SHUT_RDWR);
      handlers.swap(handlers_);
    }
    for (std::thread& t : handlers) {
      if (t.joinable()) t.join();
    }
    ::close(listenFd_);
  }

 private:
  void acceptLoop() {
    while (!stopping_.load(std::memory_order_relaxed)) {
      pollfd p{listenFd_, POLLIN, 0};
      const int r = ::poll(&p, 1, 200);
      if (r < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (r == 0) continue;
      const int fd = ::accept4(listenFd_, nullptr, nullptr, SOCK_CLOEXEC);
      if (fd < 0) {
        if (stopping_.load(std::memory_order_relaxed)) break;
        continue;
      }
      std::scoped_lock lock(mtx_);
      if (stopping_.load(std::memory_order_relaxed)) {
        ::close(fd);
        break;
      }
      connFds_.push_back(fd);
      handlers_.emplace_back([this, fd] { serveConnection(fd); });
    }
  }

  void serveConnection(int fd) {
    // Adopting the fd; reads wait indefinitely for the next request
    // (pooled client connections idle between fetches) and wake on
    // the stop flag.
    wire::SocketConnection conn(fd, /*timeoutMillis=*/0);
    conn.setStopCheck(&stopping_);
    try {
      for (;;) {
        const std::vector<std::byte> payload = wire::readFrame(conn, nullptr);
        const wire::FetchRequestFrame req = wire::decodeFetchRequest(payload);
        serveRequest(conn, req);
      }
    } catch (const TransportError&) {
      // Clean client EOF, client reset, a corrupt request, or our own
      // shutdown: all of them just end this connection. The client
      // side surfaces its own typed error when one is warranted.
    } catch (const std::exception&) {
      // Local I/O failure reading a committed file; the half-written
      // response desyncs the stream, so drop the connection and let
      // the client's frame validation fail the fetch attempt.
    }
    // Deregister BEFORE conn's destructor closes the fd: once closed,
    // the accept loop may hand the same fd number to a new connection,
    // and a late erase would unregister that one instead.
    {
      std::scoped_lock lock(mtx_);
      const auto it = std::find(connFds_.begin(), connFds_.end(), fd);
      if (it != connFds_.end()) connFds_.erase(it);
    }
  }

  void serveRequest(wire::SocketConnection& conn,
                    const wire::FetchRequestFrame& req) {
    std::vector<std::byte> encodeBuf;
    for (std::uint32_t m : req.maps) {
      if (kind_ == ShuffleTransportKind::kSocket) {
        // Served from memory when resident. The locked read is the
        // point: a server thread never observed the publication order
        // the engine's lock-free reduce fetch relies on, so it must
        // take the engine mutex for its snapshot.
        const std::shared_ptr<const Segment> seg =
            source_.residentSegmentLocked(m, req.keyblock);
        if (seg != nullptr) {
          // serializeInto is const and encodes straight from the
          // packed form — safe against the owning reduce reading the
          // same immutable segment concurrently.
          encodeBuf.clear();
          seg->serializeInto(encodeBuf);
          sendSegment(conn, m, req.keyblock, /*flags=*/0, encodeBuf);
          continue;
        }
      }
      serveFile(conn, m, req.keyblock);
    }
  }

  /// Ships one in-memory encoding: header frame, then data frames.
  void sendSegment(wire::SocketConnection& conn, std::uint32_t m,
                   std::uint32_t kb, std::uint32_t flags,
                   std::span<const std::byte> bytes) {
    wire::SegmentResponseHeader h;
    h.mapTask = m;
    h.keyblock = kb;
    h.flags = flags;
    h.totalBytes = bytes.size();
    std::vector<std::byte> out;
    wire::appendFrame(out, wire::encodeSegmentResponseHeader(h));
    conn.writeAll(out);
    for (std::size_t off = 0; off < bytes.size();) {
      const std::size_t n =
          std::min<std::size_t>(wire::kChunkBytes, bytes.size() - off);
      out.clear();
      wire::appendFrame(out, bytes.subspan(off, n));
      conn.writeAll(out);
      off += n;
    }
  }

  /// Streams one committed spill file in bounded chunks — the server
  /// never holds a whole segment resident.
  void serveFile(wire::SocketConnection& conn, std::uint32_t m,
                 std::uint32_t kb) {
    sci::FileStorage file(source_.committedSegmentPath(m, kb),
                          sci::FileStorage::Mode::kOpenReadOnly);
    const std::uint64_t size = file.size();
    wire::SegmentResponseHeader h;
    h.mapTask = m;
    h.keyblock = kb;
    h.flags = source_.compressedFiles() ? wire::kFlagCompressed : 0;
    h.totalBytes = size;
    std::vector<std::byte> out;
    wire::appendFrame(out, wire::encodeSegmentResponseHeader(h));
    conn.writeAll(out);
    std::vector<std::byte> chunk(std::min<std::uint64_t>(
        wire::kChunkBytes, std::max<std::uint64_t>(size, 1)));
    for (std::uint64_t off = 0; off < size;) {
      const std::size_t n = static_cast<std::size_t>(
          std::min<std::uint64_t>(chunk.size(), size - off));
      file.readAt(off, std::span<std::byte>(chunk.data(), n));
      out.clear();
      wire::appendFrame(out, std::span<const std::byte>(chunk.data(), n));
      conn.writeAll(out);
      off += n;
    }
  }

  ShuffleTransportKind kind_;
  const TransportSource& source_;
  std::atomic<bool> stopping_{false};
  int listenFd_ = -1;
  std::uint16_t port_ = 0;
  std::thread acceptThread_;
  std::mutex mtx_;
  std::vector<std::thread> handlers_;
  std::vector<int> connFds_;
};

// ---- socket-backed client (kSocket and kFileServed) ----

class SocketTransport final : public ShuffleTransport {
 public:
  SocketTransport(ShuffleTransportKind kind, const TransportSource& source,
                  const TransportOptions& options)
      : kind_(kind),
        source_(source),
        options_(options),
        server_(kind, source) {}

  ~SocketTransport() override { stop(); }

  ShuffleTransportKind kind() const noexcept override { return kind_; }

  std::vector<FetchedSegment> fetch(const TransportFetchRequest& req,
                                    FetchStats& stats) override {
    if (options_.faultPlan != nullptr &&
        options_.faultPlan->shouldDropFetch(req.keyblock, req.fetchAttempt)) {
      injectDrop(req, stats);
    }
    std::vector<FetchedSegment> out(req.maps.size());
    if (req.maps.empty()) return out;

    // Contiguous batches, one pooled connection each: the server
    // answers each connection independently, so batches overlap
    // without any client-side threading.
    const std::size_t wanted = std::min<std::size_t>(
        std::max<std::uint32_t>(options_.connections, 1), req.maps.size());
    const std::size_t per = (req.maps.size() + wanted - 1) / wanted;
    // Re-derive the batch count from the rounded-up size so the last
    // batch is never empty (e.g. 5 maps over 4 connections -> 3
    // batches of <=2, not 4 with a phantom one past the end).
    const std::size_t nBatches = (req.maps.size() + per - 1) / per;
    std::vector<std::unique_ptr<wire::SocketConnection>> conns;
    conns.reserve(nBatches);
    // On any throw the acquired connections are destroyed, not pooled:
    // a failed attempt may have left unread response bytes on them.
    for (std::size_t b = 0; b < nBatches; ++b) {
      conns.push_back(acquire(stats));
      const auto batch = req.maps.subspan(b * per,
                                          std::min(per, req.maps.size() - b * per));
      const std::vector<std::byte> framed =
          wire::encodeFetchRequest(req.keyblock, batch);
      conns[b]->writeAll(framed);
      ++stats.framesSent;
      stats.wireBytes += framed.size();
    }
    for (std::size_t b = 0; b < nBatches; ++b) {
      const auto batch = req.maps.subspan(b * per,
                                          std::min(per, req.maps.size() - b * per));
      for (std::size_t i = 0; i < batch.size(); ++i) {
        std::vector<std::byte> payload;
        const wire::SegmentResponseHeader h = wire::readSegmentResponse(
            *conns[b], batch[i], req.keyblock, payload, &stats);
        out[b * per + i] = decodeFetched(h, std::move(payload), stats);
      }
    }
    for (auto& c : conns) release(std::move(c));
    return out;
  }

  void stop() override {
    {
      std::scoped_lock lock(poolMtx_);
      stopped_ = true;
      pool_.clear();
    }
    server_.stop();
  }

 private:
  std::unique_ptr<wire::SocketConnection> acquire(FetchStats& stats) {
    {
      std::scoped_lock lock(poolMtx_);
      if (!pool_.empty()) {
        auto c = std::move(pool_.back());
        pool_.pop_back();
        ++stats.connectionsReused;
        return c;
      }
    }
    auto c = std::make_unique<wire::SocketConnection>(server_.port(),
                                                      options_.timeoutMillis);
    ++stats.connectionsOpened;
    return c;
  }

  void release(std::unique_ptr<wire::SocketConnection> conn) {
    std::scoped_lock lock(poolMtx_);
    if (!stopped_) pool_.push_back(std::move(conn));
  }

  /// Simulates a mid-fetch connection failure: a real partial exchange
  /// (request sent, response header read) whose bytes the engine books
  /// as wasted, then the typed drop. The connection is discarded, never
  /// pooled — exactly what a genuine peer reset leaves behind.
  void injectDrop(const TransportFetchRequest& req, FetchStats& stats) {
    if (!req.maps.empty()) {
      try {
        const auto conn = acquire(stats);
        const std::vector<std::byte> framed =
            wire::encodeFetchRequest(req.keyblock, req.maps.first(1));
        conn->writeAll(framed);
        ++stats.framesSent;
        stats.wireBytes += framed.size();
        wire::readFrame(*conn, &stats);
      } catch (const TransportError&) {
        // The drop below is the injected failure either way.
      }
    }
    throw TransportError(TransportFaultKind::kConnectionDrop,
                         "injected connection drop (fetch attempt " +
                             std::to_string(req.fetchAttempt) + ")");
  }

  FetchedSegment decodeFetched(const wire::SegmentResponseHeader& h,
                               std::vector<std::byte>&& payload,
                               FetchStats& stats) {
    FetchedSegment fs;
    const bool compressed = (h.flags & wire::kFlagCompressed) != 0;
    try {
      fs.header = Segment::peekHeader(payload);
    } catch (const std::exception& e) {
      throw TransportError(TransportFaultKind::kCorruptFrame,
                           std::string("segment codec header unreadable: ") +
                               e.what());
    }
    if (fs.header.mapTask != h.mapTask || fs.header.keyblock != h.keyblock) {
      throw TransportError(
          TransportFaultKind::kCorruptFrame,
          "codec header disagrees with the response header identity");
    }
    stats.bytesFetched += payload.size();
    if (fs.header.numRecords == 0) return fs;
    try {
      if (kind_ == ShuffleTransportKind::kFileServed) {
        // Decode through SegmentStream windows during the merge — the
        // client never materializes the segment either. The wire bytes
        // were counted above; the stream re-reads its own in-memory
        // copy, so countStreamBytes stays false.
        auto storage = std::make_unique<sci::MemoryStorage>();
        storage->writeAt(0, payload);
        fs.stream = std::make_unique<SegmentStream>(
            std::move(storage), std::max<std::size_t>(
                                    source_.mergeWindowBytes(), 1),
            compressed, source_.keySpace());
      } else if (compressed) {
        auto storage = std::make_unique<sci::MemoryStorage>();
        storage->writeAt(0, payload);
        SegmentStream stream(std::move(storage),
                             std::max<std::size_t>(
                                 source_.mergeWindowBytes(), 1),
                             /*compressed=*/true, source_.keySpace());
        fs.owned = std::make_unique<Segment>(Segment::fromStream(stream));
      } else {
        fs.owned = std::make_unique<Segment>(Segment::deserialize(payload));
      }
      if (fs.owned != nullptr && source_.keySpace().rank() > 0 &&
          !fs.owned->hasLinearKeys()) {
        fs.owned->computeLinearKeys(source_.keySpace());
      }
    } catch (const TransportError&) {
      throw;
    } catch (const std::exception& e) {
      throw TransportError(TransportFaultKind::kCorruptFrame,
                           std::string("segment payload undecodable: ") +
                               e.what());
    }
    return fs;
  }

  ShuffleTransportKind kind_;
  const TransportSource& source_;
  TransportOptions options_;
  SegmentServer server_;
  std::mutex poolMtx_;
  bool stopped_ = false;
  std::vector<std::unique_ptr<wire::SocketConnection>> pool_;
};

}  // namespace

std::unique_ptr<ShuffleTransport> makeShuffleTransport(
    ShuffleTransportKind kind, const TransportSource& source,
    const TransportOptions& options) {
  if (kind == ShuffleTransportKind::kInProcess) {
    return std::make_unique<InProcessTransport>(source, options);
  }
  return std::make_unique<SocketTransport>(kind, source, options);
}

}  // namespace sidr::mr
