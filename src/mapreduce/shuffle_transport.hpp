// ShuffleTransport: the pluggable shuffle data plane (DESIGN.md §17).
//
// A reduce task's fetch phase acquires the committed map-output
// segments of its dependency set. HOW the bytes move is a transport
// concern with three backends — same-address-space handle/file handoff
// (the historical path, byte-identical), a localhost socket data plane
// framing the exact-size bulk codec onto pooled TCP connections, and a
// file-served plane that streams committed `job<id>/` spill files
// through bounded windows on both sides of the wire. WHAT the fetch
// means is fixed by the engine and identical across backends:
//
//  - a reduce fetches only after observing, under the engine mutex,
//    that every dependency committed (publication ordering);
//  - the per-map SegmentHeader supplies the count-annotation tally
//    (paper §3.2.1) before any record is parsed;
//  - each fetch attempt emits one obs::Phase::kTransportFetch span
//    nested inside the reduce's kFetch span, carrying bytes / records /
//    connection tallies, so the §13 trace invariants check the same
//    predicates whichever plane moved the bytes;
//  - failed attempts are retried with bounded backoff under
//    FaultPlan::maxFetchAttempts; their partial bytes land in
//    TransportStats::wastedWireBytes, never JobResult::shuffleBytes.
//
// Wire protocol (kSocket / kFileServed; namespace wire below):
// little-endian u32 length-prefixed frames, payload <= kFrameMax. A
// fetch request is ONE frame: {kRequestMagic, keyblock, count, count x
// map id} — a whole batch of maps per round trip. The server answers
// per map, in request order: a segment-response header frame
// {kSegmentMagic, mapTask, keyblock, flags, u64 totalBytes}, then data
// frames whose payloads concatenate to exactly totalBytes of the
// segment codec (flags bit0 selects the compressed framing). Empty
// segments ship their full 32-byte encoding — no special case on the
// wire. Every violation maps to a typed TransportError (truncated,
// corrupt, oversized, reordered, timeout) — malformed input can fail a
// fetch attempt but never hang or crash the engine.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "mapreduce/job.hpp"
#include "mapreduce/segment.hpp"

namespace sidr::mr {

// ---- typed transport failures ----

enum class TransportFaultKind : std::uint8_t {
  kTruncatedFrame,  ///< peer closed / input ended mid-frame
  kCorruptFrame,    ///< bad magic, impossible length, codec mismatch
  kOversizedFrame,  ///< frame or segment exceeds the protocol bound
  kReorderedFrame,  ///< response does not match the request order
  kConnectionDrop,  ///< connection failed (or injected FetchFaultSpec)
  kTimeout,         ///< peer stalled past JobSpec::transportTimeoutMillis
};

const char* transportFaultName(TransportFaultKind fault) noexcept;

/// A fetch-attempt failure on the shuffle data plane. Caught by the
/// engine's bounded retry loop; exhaustion surfaces as a JobError
/// naming the reduce task, attempt, and this fault.
class TransportError : public std::runtime_error {
 public:
  TransportError(TransportFaultKind fault, const std::string& what)
      : std::runtime_error(std::string("TransportError[") +
                           transportFaultName(fault) + "]: " + what),
        fault_(fault) {}

  TransportFaultKind fault() const noexcept { return fault_; }

 private:
  TransportFaultKind fault_;
};

// ---- what the engine exposes to a transport ----

/// The engine-side segment store a transport serves from. Implemented
/// by JobContext; split out so transports (and their tests) depend on
/// an interface, not on engine internals.
class TransportSource {
 public:
  virtual ~TransportSource() = default;

  /// Published handle for (map, keyblock), read WITHOUT the engine
  /// mutex. Safe ONLY on the fetching reduce's own thread: the reduce
  /// became runnable after observing the publications under the mutex,
  /// which ordered them before this read. Null = not resident (eager
  /// mode, or evicted under a memory budget).
  virtual std::shared_ptr<const Segment> residentSegment(
      std::uint32_t map, std::uint32_t keyblock) const = 0;

  /// Same slot read UNDER the engine mutex — the only form a transport
  /// server thread (which never observed the publication order) may
  /// use.
  virtual std::shared_ptr<const Segment> residentSegmentLocked(
      std::uint32_t map, std::uint32_t keyblock) const = 0;

  /// Committed spill-file path for (map, keyblock) — valid when the
  /// segment is not resident (eager mode / evicted slots).
  virtual std::string committedSegmentPath(std::uint32_t map,
                                           std::uint32_t keyblock) const = 0;

  /// Header-only read of a committed spill file (the §3.2.1 tally
  /// access: 32 bytes, no record parsing).
  virtual SegmentHeader peekCommittedHeader(std::uint32_t map,
                                            std::uint32_t keyblock) const = 0;

  /// Full read + decode of a committed spill file; adds the file bytes
  /// moved to `bytesFetched` (the shuffleBytes accounting).
  virtual Segment loadCommittedSegment(std::uint32_t map,
                                       std::uint32_t keyblock,
                                       std::uint64_t& bytesFetched) const = 0;

  /// True when reduces must read committed files (eager spill and not
  /// cache-served: a cache-served job's segments are resident handles
  /// even under an eager-spill spec).
  virtual bool servesFromFiles() const noexcept = 0;

  /// True when a null resident slot means "evicted, stream its file"
  /// (memory budget set) rather than a publication-protocol violation.
  virtual bool streamsEvicted() const noexcept = 0;

  /// True when committed spill files use the compressed framing.
  virtual bool compressedFiles() const noexcept = 0;

  /// Job key space (rank 0 = lexicographic fallback path).
  virtual const nd::Coord& keySpace() const = 0;

  /// Per-input decode window for streamed merge inputs.
  virtual std::size_t mergeWindowBytes() const = 0;
};

// ---- fetch results and accounting ----

/// One fetched dependency, in fetch-set order: the header is always
/// populated (the annotation tally never needs record bytes); exactly
/// one of {handle, owned, stream} is set when the segment is non-empty,
/// none when it is empty (empty segments contribute no merge input).
struct FetchedSegment {
  SegmentHeader header;
  std::shared_ptr<const Segment> handle;  ///< resident (in-process)
  std::unique_ptr<Segment> owned;         ///< decoded whole segment
  std::unique_ptr<SegmentStream> stream;  ///< windowed streaming input
  /// True when `stream` reads lazily during the merge and its
  /// bytesRead() must be folded into shuffleBytes AFTER the merge
  /// drains it (hybrid-eviction streams). False when the fetch already
  /// accounted the bytes (file-served wire transfers).
  bool countStreamBytes = false;
};

/// Per-fetch-attempt data-plane counters. `bytesFetched` keeps the
/// historical shuffleBytes semantics (serialized bytes moved; zero for
/// pure handle handoff); the wire* fields count framed socket traffic.
struct FetchStats {
  std::uint64_t bytesFetched = 0;
  std::uint64_t wireBytes = 0;
  std::uint64_t framesSent = 0;
  std::uint64_t framesReceived = 0;
  std::uint64_t connectionsOpened = 0;
  std::uint64_t connectionsReused = 0;
};

/// One reduce fetch: acquire `maps` (the keyblock's dependency set, in
/// fetch order) for `keyblock`. `fetchAttempt` is 1-based within the
/// enclosing reduce attempt — the unit FaultPlan::dropFetch targets.
struct TransportFetchRequest {
  std::uint32_t keyblock = 0;
  std::span<const std::uint32_t> maps;
  std::uint32_t fetchAttempt = 1;
};

struct TransportOptions {
  std::uint32_t connections = 2;       ///< JobSpec::transportConnections
  std::uint32_t timeoutMillis = 10000; ///< JobSpec::transportTimeoutMillis
  /// Fetch-drop injection plan (null = no injection). Not owned.
  const FaultPlan* faultPlan = nullptr;
};

// ---- the transport itself ----

class ShuffleTransport {
 public:
  virtual ~ShuffleTransport() = default;

  virtual ShuffleTransportKind kind() const noexcept = 0;

  /// Acquires every map in `req.maps`, returning one FetchedSegment per
  /// map in request order and accumulating counters into `stats`.
  /// Throws TransportError when the attempt fails (retryable); other
  /// exceptions (std::logic_error publication violations, codec errors
  /// from local files) propagate as engine bugs, not retried.
  virtual std::vector<FetchedSegment> fetch(const TransportFetchRequest& req,
                                            FetchStats& stats) = 0;

  /// Stops any server threads / closes sockets. Idempotent; called by
  /// the engine before tearing down the source. Destructors also stop.
  virtual void stop() {}
};

/// Builds the backend for `kind` over `source` (not owned; must outlive
/// the transport). Socket backends bind a listener on 127.0.0.1 and
/// start their server threads here; kInProcess allocates nothing.
std::unique_ptr<ShuffleTransport> makeShuffleTransport(
    ShuffleTransportKind kind, const TransportSource& source,
    const TransportOptions& options);

// ---- wire protocol (exposed for the fuzz/property suite) ----

namespace wire {

/// Hard bound on one frame's payload; larger lengths are protocol
/// violations (kOversizedFrame) rejected BEFORE any allocation.
inline constexpr std::uint32_t kFrameMax = 64u << 20;

/// Hard bound on one segment's totalBytes across its data frames.
inline constexpr std::uint64_t kSegmentMax = 1ull << 30;

/// Server-side streaming granule: committed files are served in chunks
/// of at most this many payload bytes, so the file-served plane never
/// holds a whole segment resident server-side.
inline constexpr std::uint32_t kChunkBytes = 256u << 10;

inline constexpr std::uint32_t kRequestMagic = 0x52444953u;   // "SIDR"
inline constexpr std::uint32_t kSegmentMagic = 0x31474553u;   // "SEG1"

/// flags bit0: payload uses the compressed spill framing.
inline constexpr std::uint32_t kFlagCompressed = 1u;

/// Decoded segment-response header frame.
struct SegmentResponseHeader {
  std::uint32_t mapTask = 0;
  std::uint32_t keyblock = 0;
  std::uint32_t flags = 0;
  std::uint64_t totalBytes = 0;
};

/// Decoded fetch-request frame.
struct FetchRequestFrame {
  std::uint32_t keyblock = 0;
  std::vector<std::uint32_t> maps;
};

/// A blocking byte stream the frame decoder reads from. readExact
/// throws TransportError: kTruncatedFrame when the stream ends first,
/// kTimeout when the peer stalls, kConnectionDrop on transport reset.
class ByteSource {
 public:
  virtual ~ByteSource() = default;
  virtual void readExact(std::span<std::byte> buf) = 0;
};

/// ByteSource over an in-memory buffer — the fuzz suite's way of
/// feeding truncated/corrupt/reordered byte strings straight into the
/// production decoder, no sockets involved.
class SpanByteSource final : public ByteSource {
 public:
  explicit SpanByteSource(std::span<const std::byte> bytes) noexcept
      : bytes_(bytes) {}

  void readExact(std::span<std::byte> buf) override;

  std::size_t consumed() const noexcept { return pos_; }

 private:
  std::span<const std::byte> bytes_;
  std::size_t pos_ = 0;
};

/// A connected localhost TCP stream with a per-read poll timeout.
/// Exposed so tests can speak the protocol against rogue peers (silent
/// servers for kTimeout, garbage servers for the corrupt-frame family).
class SocketConnection final : public ByteSource {
 public:
  /// Connects to 127.0.0.1:`port`. Throws TransportError
  /// (kConnectionDrop) when the connection is refused.
  SocketConnection(std::uint16_t port, std::uint32_t timeoutMillis);
  /// Adopts an already-connected fd (server-side accepted sockets).
  SocketConnection(int fd, std::uint32_t timeoutMillis) noexcept;
  ~SocketConnection() override;
  SocketConnection(const SocketConnection&) = delete;
  SocketConnection& operator=(const SocketConnection&) = delete;

  void readExact(std::span<std::byte> buf) override;

  /// Writes all of buf. Throws TransportError (kConnectionDrop) when
  /// the peer resets.
  void writeAll(std::span<const std::byte> buf);

  /// Server-side shutdown hook: when set and `*stop` becomes true, a
  /// blocked readExact throws kConnectionDrop at its next poll tick. A
  /// timeout of 0 means "no stall limit" (server connections wait
  /// indefinitely for the next request, checking only this flag).
  void setStopCheck(const std::atomic<bool>* stop) noexcept { stop_ = stop; }

  int fd() const noexcept { return fd_; }

 private:
  int fd_ = -1;
  std::uint32_t timeoutMillis_;
  const std::atomic<bool>* stop_ = nullptr;
};

/// Appends a u32 length prefix + payload to `out`.
void appendFrame(std::vector<std::byte>& out, std::span<const std::byte> payload);

/// Reads one length-prefixed frame. Enforces kFrameMax BEFORE
/// allocating. `stats` (optional) counts the frame and its wire bytes.
std::vector<std::byte> readFrame(ByteSource& src, FetchStats* stats);

/// Encodes a fetch-request frame for `maps` of `keyblock`.
std::vector<std::byte> encodeFetchRequest(std::uint32_t keyblock,
                                          std::span<const std::uint32_t> maps);

/// Decodes a fetch-request frame payload (server side). Throws
/// TransportError (kCorruptFrame) on bad magic / inconsistent count.
FetchRequestFrame decodeFetchRequest(std::span<const std::byte> payload);

/// Encodes a segment-response header frame payload.
std::vector<std::byte> encodeSegmentResponseHeader(
    const SegmentResponseHeader& header);

/// Reads one map's full response (header frame + data frames),
/// appending exactly totalBytes of codec payload to `payload`.
/// Validates against the request order: a response for a different
/// (map, keyblock) throws kReorderedFrame; bad magic / short header /
/// totalBytes below the 32-byte codec header / a data frame
/// overshooting totalBytes throw kCorruptFrame; totalBytes beyond
/// kSegmentMax throws kOversizedFrame.
SegmentResponseHeader readSegmentResponse(ByteSource& src,
                                          std::uint32_t expectMap,
                                          std::uint32_t expectKeyblock,
                                          std::vector<std::byte>& payload,
                                          FetchStats* stats);

}  // namespace wire

}  // namespace sidr::mr
