// Map-side execution pipeline: batched record reading, run-cached
// partitioning, and per-keyblock segment construction.
//
// This is the engine's map task body factored into a standalone unit so
// benchmarks and parity tests can drive the exact production path (and
// its lexicographic fallback) without standing up a whole engine. The
// linearized-key fast path (DESIGN.md section 11) activates when the
// job declares a keySpace; with it absent every stage falls back to the
// original per-record, lexicographic behavior — observably identical
// output either way.
#pragma once

#include <cstdint>
#include <vector>

#include "mapreduce/interfaces.hpp"
#include "mapreduce/job.hpp"
#include "mapreduce/segment.hpp"

namespace sidr::mr {

/// Buffers a map task's emitted records per destination keyblock.
///
/// With a non-empty `keySpace` the context linearizes each emitted key
/// once and routes through Partitioner::partitionRun, caching the
/// returned [linearKey, runEnd) same-keyblock run — a structure-aware
/// partitioner is then consulted once per granule row instead of once
/// per record — and buffers PackedRecords, which takeSegment hands to
/// the Segment still packed (full KeyValues materialize lazily at the
/// first consumer that needs them). With an empty keySpace it routes
/// every emit through the classic virtual partition() into KeyValue
/// buffers and attaches no cache.
class BufferingMapContext final : public MapContext {
 public:
  /// `pool` (optional) is the job's SegmentPagePool: emitted bytes are
  /// charged against it in page-sized increments as buffers grow, so
  /// the engine observes map-side pressure while the task is still
  /// running. The context's whole charge is released when it is
  /// destroyed (by then the engine has charged the published segments
  /// themselves).
  BufferingMapContext(const Partitioner& partitioner, std::uint32_t numReducers,
                      nd::Coord keySpace = nd::Coord(),
                      SegmentPagePool* pool = nullptr);
  ~BufferingMapContext() override;

  void emit(const nd::Coord& key, Value value,
            std::uint64_t represents = 1) override;

  /// True when the linearized fast path is active.
  bool linearized() const noexcept { return keySpace_.rank() > 0; }

  /// Capacity hint: expected records per keyblock buffer, applied lazily
  /// on a buffer's first insertion so untouched keyblocks allocate
  /// nothing. Callers that know the split volume pass volume/numReducers.
  void reserveHint(std::size_t perKeyblock) noexcept {
    reserveHint_ = perKeyblock;
  }

  /// Moves keyblock `kb`'s buffered records (plus their linear keys in
  /// fast mode) into a Segment, sorts it, and applies the optional
  /// combiner. In fast mode a keyblock whose emissions arrived in
  /// nondecreasing linear-key order (tracked per emit, the common
  /// row-major case) skips the sort call outright — not even the O(n)
  /// sorted scan runs, and already-sorted combiner output is never
  /// re-sorted. Each keyblock can be taken once.
  Segment takeSegment(std::uint32_t mapTask, std::uint32_t kb,
                      const Combiner* combiner);

 private:
  std::uint64_t linearizeChecked(const nd::Coord& key) const;

  const Partitioner& partitioner_;
  nd::Coord keySpace_;
  /// Fallback mode: full KeyValue buffers, one per keyblock.
  std::vector<std::vector<KeyValue>> buffers_;
  /// Fast mode: packed buffers plus the out-of-line list payloads.
  std::vector<std::vector<PackedRecord>> packed_;
  std::vector<std::vector<std::vector<double>>> lists_;
  /// Fast mode: per-keyblock "emissions arrived in nondecreasing linear
  /// order so far" flag plus the last emitted linear key, maintained in
  /// emit — lets takeSegment skip the sort without rescanning.
  std::vector<bool> emitSorted_;
  std::vector<std::uint64_t> lastLin_;
  std::size_t reserveHint_ = 0;
  // Cached same-keyblock run [runBegin_, runEnd_) from the last
  // partitionRun call; starts empty so the first emit always routes.
  std::uint64_t runBegin_ = 1;
  std::uint64_t runEnd_ = 0;
  std::uint32_t runKb_ = 0;
  /// Page-pool accounting (null = no budget tracking): bytes emitted
  /// since the last charge, and the total pages charged so far.
  SegmentPagePool* pool_ = nullptr;
  std::uint64_t pending_ = 0;
  std::uint64_t charged_ = 0;
};

/// Executes one map task: reads every region of `split` in batches,
/// feeds the mapper, and returns one sorted (and, when `combiner` is
/// non-null, combined) segment per keyblock — exactly the segments the
/// engine publishes or spills. `keySpace` selects the fast path as in
/// BufferingMapContext.
std::vector<Segment> runMapPipeline(const InputSplit& split,
                                    std::uint32_t mapTask,
                                    const RecordReaderFactory& readerFactory,
                                    Mapper& mapper,
                                    const Partitioner& partitioner,
                                    std::uint32_t numReducers,
                                    const Combiner* combiner,
                                    const nd::Coord& keySpace,
                                    SegmentPagePool* pagePool = nullptr);

}  // namespace sidr::mr
