#include "scihadoop/datagen.hpp"

#include <cmath>
#include <numbers>

namespace sidr::sh {

namespace {

/// splitmix64 finalizer: decorrelates coordinate hashes cheaply.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t coordSeed(const nd::Coord& c, std::uint64_t seed) {
  std::uint64_t h = mix(seed);
  for (nd::Index x : c) h = mix(h ^ static_cast<std::uint64_t>(x));
  return h;
}

/// Uniform double in (0, 1) from a 64-bit state (never exactly 0).
double uniform01(std::uint64_t h) {
  return (static_cast<double>(h >> 11) + 1.0) / 9007199254740993.0;
}

}  // namespace

ValueFn temperatureField(std::uint64_t seed) {
  return [seed](const nd::Coord& c) {
    double t = c.rank() > 0 ? static_cast<double>(c[0]) : 0.0;
    double lat = c.rank() > 1 ? static_cast<double>(c[1]) : 0.0;
    double seasonal =
        15.0 + 12.0 * std::sin(2.0 * std::numbers::pi * t / 365.0);
    double latitudinal = 10.0 - lat * 0.04;
    double noise = 4.0 * (uniform01(coordSeed(c, seed)) - 0.5);
    return seasonal + latitudinal + noise;
  };
}

ValueFn windspeedField(std::uint64_t seed) {
  return [seed](const nd::Coord& c) {
    double hour = c.rank() > 0 ? static_cast<double>(c[0]) : 0.0;
    double elev = c.rank() > 3 ? static_cast<double>(c[3]) : 0.0;
    double diurnal =
        6.0 + 2.5 * std::sin(2.0 * std::numbers::pi * hour / 24.0);
    double withAltitude = diurnal + elev * 0.15;
    double gust = 5.0 * uniform01(coordSeed(c, seed));
    return withAltitude + gust;
  };
}

ValueFn normalField(double mean, double stddev, std::uint64_t seed) {
  return [mean, stddev, seed](const nd::Coord& c) {
    std::uint64_t h = coordSeed(c, seed);
    double u1 = uniform01(h);
    double u2 = uniform01(mix(h));
    // Box-Muller transform.
    double z = std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * std::numbers::pi * u2);
    return mean + stddev * z;
  };
}

sci::Metadata temperatureMetadata(nd::Index time, nd::Index lat,
                                  nd::Index lon) {
  sci::Metadata meta;
  meta.addDimension("time", time);
  meta.addDimension("lat", lat);
  meta.addDimension("lon", lon);
  meta.addVariable("temperature", sci::DataType::kInt32,
                   {"time", "lat", "lon"});
  return meta;
}

sci::Metadata arrayMetadata(const std::string& varName, sci::DataType type,
                            const nd::Coord& shape) {
  sci::Metadata meta;
  std::vector<std::string> dimNames;
  for (std::size_t d = 0; d < shape.rank(); ++d) {
    std::string name = "dim" + std::to_string(d);
    meta.addDimension(name, shape[d]);
    dimNames.push_back(std::move(name));
  }
  meta.addVariable(varName, type, dimNames);
  return meta;
}

void fillDataset(sci::Dataset& dataset, std::size_t varIdx,
                 const ValueFn& fn) {
  nd::Coord shape = dataset.metadata().variableShape(varIdx);
  nd::Region whole = nd::Region::wholeSpace(shape);
  std::vector<double> values(static_cast<std::size_t>(shape.volume()));
  std::size_t i = 0;
  for (nd::RegionCursor cur(whole); cur.valid(); cur.next()) {
    values[i++] = fn(cur.coord());
  }
  dataset.writeRegion(varIdx, whole, values);
}

std::shared_ptr<sci::Dataset> makeMemoryDataset(const std::string& varName,
                                                sci::DataType type,
                                                const nd::Coord& shape,
                                                const ValueFn& fn) {
  auto ds = std::make_shared<sci::Dataset>(sci::Dataset::create(
      std::make_shared<sci::MemoryStorage>(),
      arrayMetadata(varName, type, shape)));
  fillDataset(*ds, 0, fn);
  return ds;
}

}  // namespace sidr::sh
