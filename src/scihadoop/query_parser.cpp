#include "scihadoop/query_parser.hpp"

#include <cctype>
#include <sstream>
#include <stdexcept>

namespace sidr::sh {

namespace {

/// Minimal recursive-descent scanner over the query text.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  StructuralQuery parse() {
    StructuralQuery q;
    q.op = parseOperator();
    expect('(');
    q.variable = parseIdent();
    if (peek() == '[') {
      ++pos_;
      std::vector<nd::Index> lo;
      std::vector<nd::Index> hi;
      while (true) {
        lo.push_back(static_cast<nd::Index>(parseNumber()));
        expect(':');
        hi.push_back(static_cast<nd::Index>(parseNumber()));
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        break;
      }
      nd::Coord corner{std::span<const nd::Index>(lo)};
      nd::Coord shape = nd::Coord::zeros(lo.size());
      for (std::size_t d = 0; d < lo.size(); ++d) {
        if (hi[d] <= lo[d]) fail("empty subset range");
        shape[d] = hi[d] - lo[d];
      }
      q.subset = nd::Region(corner, shape);
    }
    bool haveEshape = false;
    while (peek() == ',') {
      ++pos_;
      std::string key = parseIdent();
      expect('=');
      if (key == "eshape") {
        q.extractionShape = parseCoord();
        haveEshape = true;
      } else if (key == "stride") {
        q.stride = parseCoord();
      } else if (key == "edge") {
        std::string v = parseIdent();
        if (v == "truncate") {
          q.edgeMode = EdgeMode::kTruncate;
        } else if (v == "pad") {
          q.edgeMode = EdgeMode::kPad;
        } else {
          fail("expected 'truncate' or 'pad'");
        }
      } else if (key == "keys") {
        std::string v = parseIdent();
        if (v == "renumber") {
          q.keyMode = KeyMode::kRenumber;
        } else if (v == "preserve") {
          q.keyMode = KeyMode::kPreserveCoords;
        } else {
          fail("expected 'renumber' or 'preserve'");
        }
      } else if (key == "threshold") {
        q.filterThreshold = parseNumber();
      } else if (key == "skew") {
        q.skewBound = static_cast<nd::Index>(parseNumber());
      } else {
        fail("unknown parameter '" + key + "'");
      }
    }
    expect(')');
    skipSpace();
    if (pos_ != text_.size()) fail("trailing input");
    if (!haveEshape) {
      throw std::invalid_argument(
          "parseQuery: the 'eshape' parameter is required");
    }
    return q;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    std::ostringstream os;
    os << "parseQuery: " << what << " at position " << pos_ << " in \""
       << text_ << "\"";
    throw std::invalid_argument(os.str());
  }

  void skipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skipSpace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  std::string parseIdent() {
    skipSpace();
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected identifier");
    return text_.substr(start, pos_ - start);
  }

  double parseNumber() {
    skipSpace();
    std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            ((text_[pos_] == '-' || text_[pos_] == '+') && pos_ > start &&
             (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
    return std::stod(text_.substr(start, pos_ - start));
  }

  nd::Coord parseCoord() {
    skipSpace();
    if (peek() != '{') fail("expected '{'");
    std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '}') ++pos_;
    if (pos_ == text_.size()) fail("unterminated coordinate");
    ++pos_;  // consume '}'
    return nd::Coord::parse(text_.substr(start, pos_ - start));
  }

  OperatorKind parseOperator() {
    std::string name = parseIdent();
    if (name == "mean") return OperatorKind::kMean;
    if (name == "sum") return OperatorKind::kSum;
    if (name == "min") return OperatorKind::kMin;
    if (name == "max") return OperatorKind::kMax;
    if (name == "count") return OperatorKind::kCount;
    if (name == "range") return OperatorKind::kRange;
    if (name == "median") return OperatorKind::kMedian;
    if (name == "filter") return OperatorKind::kFilter;
    if (name == "sort") return OperatorKind::kSort;
    // kJoin is deliberately NOT parseable: a join needs the full
    // JoinSpec (second variable, shapes), which the one-line query
    // language has no syntax for. Build join queries programmatically.
    fail("unknown operator '" + name + "'");
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

StructuralQuery parseQuery(const std::string& text) {
  Parser p(text);
  return p.parse();
}

std::string toQueryString(const StructuralQuery& q) {
  std::ostringstream os;
  switch (q.op) {
    case OperatorKind::kMean: os << "mean"; break;
    case OperatorKind::kSum: os << "sum"; break;
    case OperatorKind::kMin: os << "min"; break;
    case OperatorKind::kMax: os << "max"; break;
    case OperatorKind::kCount: os << "count"; break;
    case OperatorKind::kRange: os << "range"; break;
    case OperatorKind::kMedian: os << "median"; break;
    case OperatorKind::kFilter: os << "filter"; break;
    case OperatorKind::kSort: os << "sort"; break;
    case OperatorKind::kJoin: os << "join"; break;
  }
  os << '(' << q.variable;
  if (q.subset) {
    os << '[';
    for (std::size_t d = 0; d < q.subset->rank(); ++d) {
      if (d != 0) os << ", ";
      os << q.subset->corner()[d] << ':'
         << q.subset->corner()[d] + q.subset->shape()[d];
    }
    os << ']';
  }
  os << ", eshape=" << q.extractionShape.toString();
  if (q.stride) os << ", stride=" << q.stride->toString();
  if (q.edgeMode == EdgeMode::kPad) os << ", edge=pad";
  if (q.keyMode == KeyMode::kPreserveCoords) os << ", keys=preserve";
  if (q.op == OperatorKind::kFilter) os << ", threshold=" << q.filterThreshold;
  if (q.skewBound > 0) os << ", skew=" << q.skewBound;
  os << ')';
  return os.str();
}

}  // namespace sidr::sh
