// Textual form of SciHadoop's "simple, array-based query language"
// (paper section 2.4). A query names the operator, the input variable
// and the extraction shape describing the units of data the operator is
// applied to, plus optional modifiers:
//
//   median(windspeed, eshape={2,36,36,10})
//   mean(temperature, eshape={7,5,1}, edge=pad)
//   mean(temperature[14:42, 10:25], eshape={7,5})   // subset query
//   filter(measurements, eshape={2,40,40,10}, threshold=3.0)
//   mean(samples, eshape={2,2}, stride={4,4}, keys=preserve, skew=1000)
//
// Grammar:
//   query    := op '(' ident subset? (',' param)* ')'
//   op       := mean|sum|min|max|count|range|median|filter|sort
//   subset   := '[' range (',' range)* ']'     (one range per dimension)
//   range    := int ':' int                    (half-open, lo:hi)
//   param    := 'eshape' '=' coord | 'stride' '=' coord
//             | 'edge' '=' ('truncate'|'pad')
//             | 'keys' '=' ('renumber'|'preserve')
//             | 'threshold' '=' number | 'skew' '=' integer
//   coord    := '{' int (',' int)* '}'
#pragma once

#include <string>

#include "scihadoop/query.hpp"

namespace sidr::sh {

/// Parses the query language; throws std::invalid_argument with a
/// position-annotated message on malformed input. `eshape` is required.
StructuralQuery parseQuery(const std::string& text);

/// Canonical textual form; parseQuery(toQueryString(q)) == q.
std::string toQueryString(const StructuralQuery& q);

}  // namespace sidr::sh
