// Coordinate input-split generation (SciHadoop's contribution that SIDR
// builds on).
//
// Splits are slabs of the input space: full extent in trailing
// dimensions, a run of the leading dimension(s) sized to a target
// element count (the analogue of sizing byte-range splits to the HDFS
// block size; the paper's 348 GB / 128 MB -> 2781 splits). Optionally
// slab boundaries snap to extraction-cell boundaries, which shrinks the
// overlap between neighbouring keyblocks' dependency sets.
#pragma once

#include <vector>

#include "mapreduce/job.hpp"
#include "scihadoop/extraction.hpp"

namespace sidr::sh {

struct SplitOptions {
  /// Desired elements per split. The generator rounds so splits differ
  /// by at most one slab row.
  nd::Index targetElements = 1 << 20;

  /// Snap slab boundaries to multiples of the extraction stride in the
  /// split dimension when the target allows it.
  bool alignToExtraction = false;
};

/// Generates coordinate splits covering `inputShape` exactly
/// (disjoint, and their union is the whole space).
std::vector<mr::InputSplit> generateSplits(const nd::Coord& inputShape,
                                           const SplitOptions& options);

/// Variant that can snap boundaries to `extraction`'s stride.
std::vector<mr::InputSplit> generateSplits(const nd::Coord& inputShape,
                                           const ExtractionMap& extraction,
                                           const SplitOptions& options);

/// Hadoop-style byte-range splits: the input, viewed as a row-major
/// byte stream, is cut into `splitCount` balanced linear ranges with no
/// regard for array structure — exactly how stock Hadoop's 128 MB HDFS
/// blocks produced the paper's 2,781 splits. Each split decomposes into
/// up to 2*rank+1 coordinate regions and generally straddles extraction
/// cells, which is why stock dependency sets are wide (figure 8a).
std::vector<mr::InputSplit> generateByteRangeSplits(
    const nd::Coord& inputShape, std::size_t splitCount);

/// Computes the split element target that yields approximately
/// `desiredSplitCount` splits over `inputShape`.
nd::Index targetElementsForCount(const nd::Coord& inputShape,
                                 std::size_t desiredSplitCount);

}  // namespace sidr::sh
