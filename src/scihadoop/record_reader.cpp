#include "scihadoop/record_reader.hpp"

namespace sidr::sh {

DatasetRecordReader::DatasetRecordReader(std::shared_ptr<sci::Dataset> dataset,
                                         std::size_t varIdx,
                                         const nd::Region& region)
    : dataset_(std::move(dataset)),
      region_(region),
      values_(dataset_->readRegion(varIdx, region)),
      cursor_(region) {}

bool DatasetRecordReader::next(nd::Coord& key, double& value) {
  if (!cursor_.valid()) return false;
  key = cursor_.coord();
  value = values_[pos_++];
  cursor_.next();
  return true;
}

mr::RecordReaderFactory makeDatasetReaderFactory(
    std::shared_ptr<sci::Dataset> dataset, std::size_t varIdx) {
  return [dataset, varIdx](const nd::Region& region) {
    return std::make_unique<DatasetRecordReader>(dataset, varIdx, region);
  };
}

mr::RecordReaderFactory makeSyntheticReaderFactory(ValueFn fn) {
  return [fn](const nd::Region& region) {
    return std::make_unique<SyntheticRecordReader>(fn, region);
  };
}

}  // namespace sidr::sh
