#include "scihadoop/record_reader.hpp"

#include <algorithm>
#include <cstddef>

namespace sidr::sh {

DatasetRecordReader::DatasetRecordReader(std::shared_ptr<sci::Dataset> dataset,
                                         std::size_t varIdx,
                                         const nd::Region& region)
    : dataset_(std::move(dataset)),
      region_(region),
      values_(dataset_->readRegion(varIdx, region)),
      cursor_(region) {}

bool DatasetRecordReader::next(nd::Coord& key, double& value) {
  if (!cursor_.valid()) return false;
  key = cursor_.coord();
  value = values_[pos_++];
  cursor_.next();
  return true;
}

namespace {

/// Writes `run` keys starting at `at`, varying only the innermost
/// coordinate — the shared inner loop of both readers' nextBatch.
inline void fillRowKeys(std::span<nd::Coord> keys, std::size_t n,
                        const nd::Coord& at, std::size_t run) {
  const std::size_t last = at.rank() - 1;
  for (std::size_t i = 0; i < run; ++i) {
    nd::Coord& k = keys[n + i];
    k = at;
    k[last] += static_cast<nd::Index>(i);
  }
}

}  // namespace

std::size_t DatasetRecordReader::nextBatch(std::span<nd::Coord> keys,
                                           std::span<double> values) {
  const std::size_t cap = std::min(keys.size(), values.size());
  if (region_.rank() == 0) {  // rank-0 region: single scalar record
    return RecordReader::nextBatch(keys, values);
  }
  std::size_t n = 0;
  while (n < cap && cursor_.valid()) {
    const std::size_t run = std::min(
        cap - n, static_cast<std::size_t>(cursor_.rowRemaining()));
    fillRowKeys(keys, n, cursor_.coord(), run);
    std::copy_n(values_.begin() + static_cast<std::ptrdiff_t>(pos_), run,
                values.begin() + static_cast<std::ptrdiff_t>(n));
    pos_ += run;
    n += run;
    cursor_.advanceInRow(static_cast<nd::Index>(run));
  }
  return n;
}

std::size_t SyntheticRecordReader::nextBatch(std::span<nd::Coord> keys,
                                             std::span<double> values) {
  const std::size_t cap = std::min(keys.size(), values.size());
  if (!cursor_.valid() || cursor_.coord().rank() == 0) {
    return RecordReader::nextBatch(keys, values);
  }
  std::size_t n = 0;
  while (n < cap && cursor_.valid()) {
    const std::size_t run = std::min(
        cap - n, static_cast<std::size_t>(cursor_.rowRemaining()));
    fillRowKeys(keys, n, cursor_.coord(), run);
    for (std::size_t i = 0; i < run; ++i) values[n + i] = fn_(keys[n + i]);
    n += run;
    cursor_.advanceInRow(static_cast<nd::Index>(run));
  }
  return n;
}

mr::RecordReaderFactory makeDatasetReaderFactory(
    std::shared_ptr<sci::Dataset> dataset, std::size_t varIdx) {
  return [dataset, varIdx](const nd::Region& region) {
    return std::make_unique<DatasetRecordReader>(dataset, varIdx, region);
  };
}

mr::RecordReaderFactory makeSyntheticReaderFactory(ValueFn fn) {
  return [fn](const nd::Region& region) {
    return std::make_unique<SyntheticRecordReader>(fn, region);
  };
}

}  // namespace sidr::sh
