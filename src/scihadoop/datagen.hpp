// Deterministic synthetic dataset generators.
//
// The paper's experiments run over datasets we cannot obtain (348 GB of
// windspeed measurements; LANL climate data). Every SIDR mechanism
// depends on dataset GEOMETRY (shapes, splits, extraction alignment),
// not on the measured values; values only matter where a query's
// selectivity does (Query 2's 3-sigma filter). These generators
// reproduce both: pure functions of the coordinate (+ seed), so any
// subset of an arbitrarily large logical dataset can be generated on
// demand, identically, by any task.
#pragma once

#include <memory>

#include "scifile/dataset.hpp"
#include "scihadoop/record_reader.hpp"

namespace sidr::sh {

/// Seasonal temperature-like field: smooth sinusoid over the leading
/// (time) dimension and space, plus coordinate-hash noise. Matches the
/// paper's figure 1/2 example data.
ValueFn temperatureField(std::uint64_t seed = 1);

/// Wind-speed-like non-negative field for the paper's Query 1 dataset
/// ({7200, 360, 720, 50}: 300 days x hourly, 0.5 deg grid, 50 levels).
ValueFn windspeedField(std::uint64_t seed = 2);

/// I.i.d. Normal(mean, stddev) values from the coordinate hash — the
/// paper's Query 2 dataset ("normally distributed values", 3-sigma
/// filter keeps ~0.1%).
ValueFn normalField(double mean, double stddev, std::uint64_t seed = 3);

/// Metadata for the paper's figure 1 example:
/// time=365, lat=250, lon=200; int temperature(time, lat, lon).
sci::Metadata temperatureMetadata(nd::Index time = 365, nd::Index lat = 250,
                                  nd::Index lon = 200);

/// Metadata with a single variable `name(dim0..dimN)` of the given shape.
sci::Metadata arrayMetadata(const std::string& varName, sci::DataType type,
                            const nd::Coord& shape);

/// Materializes fn over the full variable (small datasets / examples).
void fillDataset(sci::Dataset& dataset, std::size_t varIdx, const ValueFn& fn);

/// Convenience: creates an in-memory SNDF dataset of the given shape
/// filled from fn.
std::shared_ptr<sci::Dataset> makeMemoryDataset(const std::string& varName,
                                                sci::DataType type,
                                                const nd::Coord& shape,
                                                const ValueFn& fn);

}  // namespace sidr::sh
