#include "scihadoop/operators.hpp"

#include <algorithm>
#include <stdexcept>

namespace sidr::sh {

StructuralMapper::StructuralMapper(
    const StructuralQuery& query,
    std::shared_ptr<const ExtractionMap> extraction)
    : query_(query), extraction_(std::move(extraction)) {}

void StructuralMapper::map(const nd::Coord& key, double value,
                           mr::MapContext& /*ctx*/) {
  auto kp = extraction_->keyFor(key);
  if (!kp) return;  // stride gap or truncated edge: produces nothing
  CellState* cellPtr;
  if (lastKp_ != nullptr && *lastKp_ == *kp) {
    cellPtr = lastCell_;
  } else {
    auto it = cells_.try_emplace(*kp).first;
    lastKp_ = &it->first;
    lastCell_ = cellPtr = &it->second;
  }
  CellState& cell = *cellPtr;
  ++cell.consumed;
  switch (query_.op) {
    case OperatorKind::kMean:
    case OperatorKind::kSum:
    case OperatorKind::kMin:
    case OperatorKind::kMax:
    case OperatorKind::kCount:
    case OperatorKind::kRange:
      cell.partial.merge(mr::Partial::ofValue(value));
      break;
    case OperatorKind::kMedian:
    case OperatorKind::kSort:
      cell.list.push_back(value);
      break;
    case OperatorKind::kFilter:
      if (value > query_.filterThreshold) cell.list.push_back(value);
      break;
  }
}

void StructuralMapper::finish(mr::MapContext& ctx) {
  for (auto& [kp, cell] : cells_) {
    mr::Value v = isDistributive(query_.op)
                      ? mr::Value::partial(cell.partial)
                      : mr::Value::list(std::move(cell.list));
    ctx.emit(kp, std::move(v), cell.consumed);
  }
  cells_.clear();
  lastKp_ = nullptr;
  lastCell_ = nullptr;
}

mr::Value finalizeCell(const StructuralQuery& query, const mr::Partial& p,
                       std::vector<double>&& list) {
  switch (query.op) {
    case OperatorKind::kMean:
      return mr::Value::scalar(p.mean());
    case OperatorKind::kSum:
      return mr::Value::scalar(p.sum);
    case OperatorKind::kMin:
      return mr::Value::scalar(p.min);
    case OperatorKind::kMax:
      return mr::Value::scalar(p.max);
    case OperatorKind::kCount:
      return mr::Value::scalar(static_cast<double>(p.count));
    case OperatorKind::kRange:
      return mr::Value::scalar(p.count > 0 ? p.max - p.min : 0.0);
    case OperatorKind::kMedian: {
      if (list.empty()) {
        throw std::logic_error("median over empty cell");
      }
      // Lower median: element at index (n-1)/2 in sorted order.
      std::size_t mid = (list.size() - 1) / 2;
      std::nth_element(list.begin(),
                       list.begin() + static_cast<std::ptrdiff_t>(mid),
                       list.end());
      return mr::Value::scalar(list[mid]);
    }
    case OperatorKind::kFilter:
    case OperatorKind::kSort: {
      std::sort(list.begin(), list.end());
      return mr::Value::list(std::move(list));
    }
  }
  throw std::invalid_argument("finalizeCell: bad OperatorKind");
}

void StructuralReducer::reduce(const nd::Coord& key,
                               std::span<const mr::Value* const> values,
                               mr::ReduceContext& ctx) {
  mr::Partial merged;
  std::vector<double> list;
  for (const mr::Value* v : values) {
    if (v->kind() == mr::ValueKind::kPartial) {
      merged.merge(v->asPartial());
    } else if (v->kind() == mr::ValueKind::kList) {
      const auto& xs = v->asList();
      list.insert(list.end(), xs.begin(), xs.end());
    } else {
      merged.merge(mr::Partial::ofValue(v->asScalar()));
    }
  }
  ctx.emit(key, finalizeCell(query_, merged, std::move(list)));
}

mr::MapperFactory makeStructuralMapperFactory(
    const StructuralQuery& query,
    std::shared_ptr<const ExtractionMap> extraction) {
  return [query, extraction] {
    return std::make_unique<StructuralMapper>(query, extraction);
  };
}

mr::ReducerFactory makeStructuralReducerFactory(const StructuralQuery& query) {
  return [query] { return std::make_unique<StructuralReducer>(query); };
}

std::vector<mr::KeyValue> runSerialOracle(const StructuralQuery& query,
                                          const ExtractionMap& extraction,
                                          const ValueFn& fn) {
  std::vector<mr::KeyValue> out;
  nd::Region grid = nd::Region::wholeSpace(extraction.instanceGridShape());
  for (nd::RegionCursor g(grid); g.valid(); g.next()) {
    mr::Partial partial;
    std::vector<double> list;
    nd::Region cell = extraction.cellOf(g.coord());
    for (nd::RegionCursor c(cell); c.valid(); c.next()) {
      double v = fn(c.coord());
      if (isDistributive(query.op)) {
        partial.merge(mr::Partial::ofValue(v));
      } else if (query.op == OperatorKind::kMedian ||
                 query.op == OperatorKind::kSort) {
        list.push_back(v);
      } else if (v > query.filterThreshold) {
        list.push_back(v);
      }
    }
    mr::KeyValue kv;
    kv.key = extraction.keyForInstance(g.coord());
    kv.value = finalizeCell(query, partial, std::move(list));
    kv.represents = static_cast<std::uint64_t>(cell.volume());
    out.push_back(std::move(kv));
  }
  std::sort(out.begin(), out.end(),
            [](const mr::KeyValue& a, const mr::KeyValue& b) {
              return a.key < b.key;
            });
  return out;
}

}  // namespace sidr::sh
