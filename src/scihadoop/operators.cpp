#include "scihadoop/operators.hpp"

#include <algorithm>
#include <stdexcept>

namespace sidr::sh {

StructuralMapper::StructuralMapper(
    const StructuralQuery& query,
    std::shared_ptr<const ExtractionMap> extraction)
    : query_(query), extraction_(std::move(extraction)) {}

void StructuralMapper::map(const nd::Coord& key, double value,
                           mr::MapContext& /*ctx*/) {
  auto kp = extraction_->keyFor(key);
  if (!kp) return;  // stride gap or truncated edge: produces nothing
  CellState* cellPtr;
  if (lastKp_ != nullptr && *lastKp_ == *kp) {
    cellPtr = lastCell_;
  } else {
    auto it = cells_.try_emplace(*kp).first;
    lastKp_ = &it->first;
    lastCell_ = cellPtr = &it->second;
  }
  CellState& cell = *cellPtr;
  ++cell.consumed;
  switch (query_.op) {
    case OperatorKind::kMean:
    case OperatorKind::kSum:
    case OperatorKind::kMin:
    case OperatorKind::kMax:
    case OperatorKind::kCount:
    case OperatorKind::kRange:
      cell.partial.merge(mr::Partial::ofValue(value));
      break;
    case OperatorKind::kMedian:
    case OperatorKind::kSort:
      cell.list.push_back(value);
      break;
    case OperatorKind::kFilter:
      if (value > query_.filterThreshold) cell.list.push_back(value);
      break;
    case OperatorKind::kJoin:
      throw std::logic_error(
          "StructuralMapper: kJoin needs the two-input JoinSideMapper "
          "(QueryPlanner::planJoin)");
  }
}

void StructuralMapper::finish(mr::MapContext& ctx) {
  for (auto& [kp, cell] : cells_) {
    mr::Value v = isDistributive(query_.op)
                      ? mr::Value::partial(cell.partial)
                      : mr::Value::list(std::move(cell.list));
    ctx.emit(kp, std::move(v), cell.consumed);
  }
  cells_.clear();
  lastKp_ = nullptr;
  lastCell_ = nullptr;
}

mr::Value finalizeCell(const StructuralQuery& query, const mr::Partial& p,
                       std::vector<double>&& list) {
  switch (query.op) {
    case OperatorKind::kMean:
      return mr::Value::scalar(p.mean());
    case OperatorKind::kSum:
      return mr::Value::scalar(p.sum);
    case OperatorKind::kMin:
      return mr::Value::scalar(p.min);
    case OperatorKind::kMax:
      return mr::Value::scalar(p.max);
    case OperatorKind::kCount:
      return mr::Value::scalar(static_cast<double>(p.count));
    case OperatorKind::kRange:
      return mr::Value::scalar(p.count > 0 ? p.max - p.min : 0.0);
    case OperatorKind::kMedian: {
      if (list.empty()) {
        throw std::logic_error("median over empty cell");
      }
      // Lower median: element at index (n-1)/2 in sorted order.
      std::size_t mid = (list.size() - 1) / 2;
      std::nth_element(list.begin(),
                       list.begin() + static_cast<std::ptrdiff_t>(mid),
                       list.end());
      return mr::Value::scalar(list[mid]);
    }
    case OperatorKind::kFilter:
    case OperatorKind::kSort: {
      std::sort(list.begin(), list.end());
      return mr::Value::list(std::move(list));
    }
    case OperatorKind::kJoin:
      throw std::logic_error(
          "finalizeCell: kJoin pairs two sides (JoinReducer)");
  }
  throw std::invalid_argument("finalizeCell: bad OperatorKind");
}

void StructuralReducer::reduce(const nd::Coord& key,
                               std::span<const mr::Value* const> values,
                               mr::ReduceContext& ctx) {
  mr::Partial merged;
  std::vector<double> list;
  for (const mr::Value* v : values) {
    if (v->kind() == mr::ValueKind::kPartial) {
      merged.merge(v->asPartial());
    } else if (v->kind() == mr::ValueKind::kList) {
      const auto& xs = v->asList();
      list.insert(list.end(), xs.begin(), xs.end());
    } else {
      merged.merge(mr::Partial::ofValue(v->asScalar()));
    }
  }
  ctx.emit(key, finalizeCell(query_, merged, std::move(list)));
}

mr::MapperFactory makeStructuralMapperFactory(
    const StructuralQuery& query,
    std::shared_ptr<const ExtractionMap> extraction) {
  return [query, extraction] {
    return std::make_unique<StructuralMapper>(query, extraction);
  };
}

mr::ReducerFactory makeStructuralReducerFactory(const StructuralQuery& query) {
  return [query] { return std::make_unique<StructuralReducer>(query); };
}

std::vector<mr::KeyValue> runSerialOracle(const StructuralQuery& query,
                                          const ExtractionMap& extraction,
                                          const ValueFn& fn) {
  if (query.op == OperatorKind::kJoin) {
    throw std::invalid_argument(
        "runSerialOracle: kJoin reads two inputs (use runJoinOracle)");
  }
  std::vector<mr::KeyValue> out;
  nd::Region grid = nd::Region::wholeSpace(extraction.instanceGridShape());
  for (nd::RegionCursor g(grid); g.valid(); g.next()) {
    mr::Partial partial;
    std::vector<double> list;
    nd::Region cell = extraction.cellOf(g.coord());
    for (nd::RegionCursor c(cell); c.valid(); c.next()) {
      double v = fn(c.coord());
      if (isDistributive(query.op)) {
        partial.merge(mr::Partial::ofValue(v));
      } else if (query.op == OperatorKind::kMedian ||
                 query.op == OperatorKind::kSort) {
        list.push_back(v);
      } else if (v > query.filterThreshold) {
        list.push_back(v);
      }
    }
    mr::KeyValue kv;
    kv.key = extraction.keyForInstance(g.coord());
    kv.value = finalizeCell(query, partial, std::move(list));
    kv.represents = static_cast<std::uint64_t>(cell.volume());
    out.push_back(std::move(kv));
  }
  std::sort(out.begin(), out.end(),
            [](const mr::KeyValue& a, const mr::KeyValue& b) {
              return a.key < b.key;
            });
  return out;
}

JoinSideMapper::JoinSideMapper(
    std::shared_ptr<const ExtractionMap> extraction, double keepAbove,
    std::uint8_t side)
    : extraction_(std::move(extraction)),
      keepAbove_(keepAbove),
      sideTag_(side == 0 ? 0.0 : 1.0) {
  if (side > 1) {
    throw std::invalid_argument("JoinSideMapper: side must be 0 or 1");
  }
}

void JoinSideMapper::map(const nd::Coord& key, double value,
                         mr::MapContext& /*ctx*/) {
  auto kp = extraction_->keyFor(key);
  if (!kp) return;  // stride gap or truncated edge: produces nothing
  CellState* cellPtr;
  if (lastKp_ != nullptr && *lastKp_ == *kp) {
    cellPtr = lastCell_;
  } else {
    auto it = cells_.try_emplace(*kp).first;
    lastKp_ = &it->first;
    lastCell_ = cellPtr = &it->second;
  }
  ++cellPtr->consumed;
  if (value > keepAbove_) cellPtr->values.push_back(value);
}

void JoinSideMapper::finish(mr::MapContext& ctx) {
  for (auto& [kp, cell] : cells_) {
    std::vector<double> tagged;
    tagged.reserve(cell.values.size() + 1);
    tagged.push_back(sideTag_);
    tagged.insert(tagged.end(), cell.values.begin(), cell.values.end());
    ctx.emit(kp, mr::Value::list(std::move(tagged)), cell.consumed);
  }
  cells_.clear();
  lastKp_ = nullptr;
  lastCell_ = nullptr;
}

void JoinReducer::reduce(const nd::Coord& key,
                         std::span<const mr::Value* const> values,
                         mr::ReduceContext& ctx) {
  std::vector<double> left;
  std::vector<double> right;
  for (const mr::Value* v : values) {
    if (v->kind() != mr::ValueKind::kList) {
      throw std::logic_error("JoinReducer: expected side-tagged lists");
    }
    const auto& xs = v->asList();
    if (xs.empty() || (xs.front() != 0.0 && xs.front() != 1.0)) {
      throw std::logic_error("JoinReducer: malformed side tag");
    }
    auto& side = xs.front() == 0.0 ? left : right;
    side.insert(side.end(), xs.begin() + 1, xs.end());
  }
  // Sorting each side makes the output a pure function of the two value
  // MULTISETS: merge order (and with it shuffle regime, transport, and
  // partition refinement) cannot show through.
  std::sort(left.begin(), left.end());
  std::sort(right.begin(), right.end());
  std::vector<double> products;
  products.reserve(left.size() * right.size());
  for (double a : left) {
    for (double b : right) products.push_back(a * b);
  }
  ctx.emit(key, mr::Value::list(std::move(products)));
}

StructuralQuery joinRightQuery(const StructuralQuery& query) {
  if (!query.join) {
    throw std::invalid_argument("joinRightQuery: query has no JoinSpec");
  }
  StructuralQuery rq;
  rq.variable = query.join->variable;
  rq.op = OperatorKind::kJoin;
  rq.extractionShape = query.join->extractionShape;
  rq.stride = query.join->stride;
  rq.edgeMode = query.edgeMode;
  rq.keyMode = KeyMode::kRenumber;
  return rq;
}

mr::MapperFactory makeJoinMapperFactory(
    const StructuralQuery& query,
    std::shared_ptr<const ExtractionMap> extraction, std::uint8_t side) {
  if (!query.join) {
    throw std::invalid_argument("makeJoinMapperFactory: no JoinSpec");
  }
  const double keepAbove =
      side == 0 ? query.join->leftThreshold : query.join->rightThreshold;
  return [extraction = std::move(extraction), keepAbove, side] {
    return std::make_unique<JoinSideMapper>(extraction, keepAbove, side);
  };
}

mr::ReducerFactory makeJoinReducerFactory() {
  return [] { return std::make_unique<JoinReducer>(); };
}

std::vector<mr::KeyValue> runJoinOracle(const StructuralQuery& query,
                                        const ExtractionMap& left,
                                        const ExtractionMap& right,
                                        const ValueFn& leftFn,
                                        const ValueFn& rightFn) {
  if (query.op != OperatorKind::kJoin || !query.join) {
    throw std::invalid_argument("runJoinOracle: query is not a join");
  }
  if (left.instanceGridShape() != right.instanceGridShape()) {
    throw std::invalid_argument("runJoinOracle: instance grids differ");
  }
  std::vector<mr::KeyValue> out;
  nd::Region grid = nd::Region::wholeSpace(left.instanceGridShape());
  for (nd::RegionCursor g(grid); g.valid(); g.next()) {
    auto survivors = [](const ExtractionMap& ex, const ValueFn& fn,
                        const nd::Coord& inst, double keepAbove,
                        std::uint64_t& consumed) {
      std::vector<double> vs;
      nd::Region cell = ex.cellOf(inst);
      consumed += static_cast<std::uint64_t>(cell.volume());
      for (nd::RegionCursor c(cell); c.valid(); c.next()) {
        double v = fn(c.coord());
        if (v > keepAbove) vs.push_back(v);
      }
      std::sort(vs.begin(), vs.end());
      return vs;
    };
    std::uint64_t consumed = 0;
    std::vector<double> ls = survivors(left, leftFn, g.coord(),
                                       query.join->leftThreshold, consumed);
    std::vector<double> rs = survivors(right, rightFn, g.coord(),
                                       query.join->rightThreshold, consumed);
    std::vector<double> products;
    products.reserve(ls.size() * rs.size());
    for (double a : ls) {
      for (double b : rs) products.push_back(a * b);
    }
    mr::KeyValue kv;
    kv.key = left.keyForInstance(g.coord());
    kv.value = mr::Value::list(std::move(products));
    kv.represents = consumed;
    out.push_back(std::move(kv));
  }
  std::sort(out.begin(), out.end(),
            [](const mr::KeyValue& a, const mr::KeyValue& b) {
              return a.key < b.key;
            });
  return out;
}

}  // namespace sidr::sh
