#include "scihadoop/extraction.hpp"

#include <sstream>
#include <stdexcept>

namespace sidr::sh {

bool isDistributive(OperatorKind op) {
  switch (op) {
    case OperatorKind::kMean:
    case OperatorKind::kSum:
    case OperatorKind::kMin:
    case OperatorKind::kMax:
    case OperatorKind::kCount:
    case OperatorKind::kRange:
      return true;
    case OperatorKind::kMedian:
    case OperatorKind::kFilter:
    case OperatorKind::kSort:
    case OperatorKind::kJoin:
      return false;
  }
  throw std::invalid_argument("isDistributive: bad OperatorKind");
}

std::string describe(const StructuralQuery& q) {
  std::ostringstream os;
  switch (q.op) {
    case OperatorKind::kMean: os << "mean"; break;
    case OperatorKind::kSum: os << "sum"; break;
    case OperatorKind::kMin: os << "min"; break;
    case OperatorKind::kMax: os << "max"; break;
    case OperatorKind::kCount: os << "count"; break;
    case OperatorKind::kRange: os << "range"; break;
    case OperatorKind::kSort: os << "sort"; break;
    case OperatorKind::kMedian: os << "median"; break;
    case OperatorKind::kFilter:
      os << "filter(>" << q.filterThreshold << ")";
      break;
    case OperatorKind::kJoin:
      os << "join";
      break;
  }
  os << " over " << q.variable;
  if (q.subset) os << '[' << q.subset->toString() << ']';
  os << " eshape " << q.extractionShape.toString();
  if (q.stride) os << " stride " << q.stride->toString();
  if (q.join) {
    os << " with " << q.join->variable << " eshape "
       << q.join->extractionShape.toString();
    if (q.join->stride) os << " stride " << q.join->stride->toString();
  }
  return os.str();
}

ExtractionMap::ExtractionMap(const StructuralQuery& query,
                             nd::Coord inputShape)
    : inputShape_(inputShape),
      domain_(query.subset.value_or(nd::Region::wholeSpace(inputShape))),
      eshape_(query.extractionShape),
      keyMode_(query.keyMode),
      edgeMode_(query.edgeMode) {
  if (eshape_.rank() != inputShape_.rank()) {
    throw std::invalid_argument(
        "ExtractionMap: extraction shape rank != input rank");
  }
  if (!eshape_.isValidShape() || !inputShape_.isValidShape()) {
    throw std::invalid_argument("ExtractionMap: shapes must be positive");
  }
  if (!nd::Region::wholeSpace(inputShape_).containsRegion(domain_)) {
    throw std::invalid_argument(
        "ExtractionMap: query subset outside the input space");
  }
  stride_ = query.stride.value_or(eshape_);
  if (stride_.rank() != eshape_.rank()) {
    throw std::invalid_argument("ExtractionMap: stride rank mismatch");
  }
  for (std::size_t d = 0; d < eshape_.rank(); ++d) {
    if (stride_[d] < eshape_[d]) {
      throw std::invalid_argument(
          "ExtractionMap: stride must be >= extraction shape");
    }
    if (eshape_[d] > inputShape_[d]) {
      throw std::invalid_argument(
          "ExtractionMap: extraction shape exceeds input");
    }
  }

  const nd::Coord& extent = domain_.shape();
  for (std::size_t d = 0; d < eshape_.rank(); ++d) {
    if (eshape_[d] > extent[d]) {
      throw std::invalid_argument(
          "ExtractionMap: extraction shape exceeds the query domain");
    }
  }
  grid_ = nd::Coord::zeros(inputShape_.rank());
  for (std::size_t d = 0; d < inputShape_.rank(); ++d) {
    if (edgeMode_ == EdgeMode::kTruncate) {
      // Count instances whose full cell fits: corner i*stride with
      // i*stride + eshape <= the domain extent.
      grid_[d] = (extent[d] - eshape_[d]) / stride_[d] + 1;
    } else {
      // Count instances whose cell intersects the domain at all.
      grid_[d] = (extent[d] + stride_[d] - 1) / stride_[d];
    }
  }

  intermediateSpace_ =
      (keyMode_ == KeyMode::kRenumber) ? grid_ : inputShape_;
}

std::optional<nd::Coord> ExtractionMap::instanceOf(const nd::Coord& k) const {
  if (k.rank() != inputShape_.rank()) {
    throw std::invalid_argument("ExtractionMap::instanceOf: rank mismatch");
  }
  nd::Coord g = nd::Coord::zeros(k.rank());
  for (std::size_t d = 0; d < k.rank(); ++d) {
    nd::Index rel = k[d] - domain_.corner()[d];
    if (rel < 0) return std::nullopt;  // before the query subset
    g[d] = rel / stride_[d];
    nd::Index within = rel % stride_[d];
    if (within >= eshape_[d]) return std::nullopt;  // stride gap
    if (g[d] >= grid_[d]) return std::nullopt;  // past / truncated edge
  }
  return g;
}

std::optional<nd::Coord> ExtractionMap::keyFor(const nd::Coord& k) const {
  auto g = instanceOf(k);
  if (!g) return std::nullopt;
  return keyForInstance(*g);
}

nd::Coord ExtractionMap::keyForInstance(const nd::Coord& g) const {
  if (keyMode_ == KeyMode::kRenumber) return g;
  // Preserve-coordinates keys live in the ORIGINAL input space.
  return g.times(stride_).plus(domain_.corner());
}

nd::Coord ExtractionMap::instanceForKey(const nd::Coord& kp) const {
  if (keyMode_ == KeyMode::kRenumber) return kp;
  return kp.minus(domain_.corner()).dividedBy(stride_);
}

nd::Region ExtractionMap::cellOf(const nd::Coord& g) const {
  nd::Coord corner = g.times(stride_).plus(domain_.corner());
  nd::Coord shape = eshape_;
  for (std::size_t d = 0; d < shape.rank(); ++d) {
    if (g[d] < 0 || g[d] >= grid_[d]) {
      throw std::out_of_range("ExtractionMap::cellOf: instance out of grid");
    }
    nd::Index domainEnd = domain_.corner()[d] + domain_.shape()[d];
    if (corner[d] + shape[d] > domainEnd) {
      shape[d] = domainEnd - corner[d];  // pad-mode clipped edge cell
    }
  }
  return nd::Region(corner, shape);
}

std::optional<nd::Region> ExtractionMap::instanceRangeOf(
    const nd::Region& r) const {
  if (r.rank() != inputShape_.rank()) {
    throw std::invalid_argument("ExtractionMap::instanceRangeOf: rank");
  }
  auto clipped = r.intersect(domain_);
  if (!clipped) return std::nullopt;  // entirely outside the subset
  nd::Coord lo = nd::Coord::zeros(r.rank());
  nd::Coord shape = nd::Coord::zeros(r.rank());
  for (std::size_t d = 0; d < r.rank(); ++d) {
    nd::Index a = clipped->corner()[d] - domain_.corner()[d];
    nd::Index b = a + clipped->shape()[d] - 1;  // inclusive, domain-rel
    // First instance whose cell [i*stride, i*stride+eshape) reaches a:
    // i*stride + eshape - 1 >= a  =>  i >= (a - eshape + 1) / stride.
    nd::Index num = a - eshape_[d] + 1;
    nd::Index iLo = (num <= 0) ? 0 : (num + stride_[d] - 1) / stride_[d];
    // Last instance whose cell starts at or before b.
    nd::Index iHi = b / stride_[d];
    if (iHi >= grid_[d]) iHi = grid_[d] - 1;
    if (iLo > iHi) return std::nullopt;
    lo[d] = iLo;
    shape[d] = iHi - iLo + 1;
  }
  return nd::Region(lo, shape);
}

}  // namespace sidr::sh
