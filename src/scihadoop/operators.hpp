// Structural operators: the Mapper/Reducer pair that evaluates a
// StructuralQuery, plus a serial oracle for correctness testing.
//
// The mapper translates input keys to intermediate keys through the
// ExtractionMap and pre-aggregates per intermediate key (Hadoop's
// combiner, run map-side):
//   * distributive operators ship a constant-size Partial per key;
//   * median ships the full value list (holistic: no reduction legal);
//   * filter ships the surviving values (possibly an empty list — the
//     record still exists so count annotations stay exact).
// Every emitted record carries `represents` = the number of map-input
// pairs consumed into it, implementing the paper's count annotation
// (section 3.2.1, method 2).
#pragma once

#include <map>

#include "mapreduce/interfaces.hpp"
#include "scihadoop/extraction.hpp"
#include "scihadoop/record_reader.hpp"

namespace sidr::sh {

class StructuralMapper final : public mr::Mapper {
 public:
  StructuralMapper(const StructuralQuery& query,
                   std::shared_ptr<const ExtractionMap> extraction);

  void map(const nd::Coord& key, double value, mr::MapContext& ctx) override;
  void finish(mr::MapContext& ctx) override;

 private:
  struct CellState {
    mr::Partial partial;
    std::vector<double> list;
    std::uint64_t consumed = 0;
  };

  StructuralQuery query_;
  std::shared_ptr<const ExtractionMap> extraction_;
  std::map<nd::Coord, CellState> cells_;
  // Last (intermediate key -> cell) lookup: a row-major record stream
  // hits the same extraction cell extractionShape[last] times in a row,
  // so the tree lookup is paid once per run. std::map node pointers are
  // stable under insertion, and nothing erases until finish().
  const nd::Coord* lastKp_ = nullptr;
  CellState* lastCell_ = nullptr;
};

class StructuralReducer final : public mr::Reducer {
 public:
  explicit StructuralReducer(const StructuralQuery& query) : query_(query) {}

  void reduce(const nd::Coord& key, std::span<const mr::Value* const> values,
              mr::ReduceContext& ctx) override;

 private:
  StructuralQuery query_;
};

/// Finalizes a merged partial / value list into the operator's output
/// value (shared by the reducer and the serial oracle).
mr::Value finalizeCell(const StructuralQuery& query, const mr::Partial& p,
                       std::vector<double>&& list);

/// Factories plugging into mr::JobSpec.
mr::MapperFactory makeStructuralMapperFactory(
    const StructuralQuery& query,
    std::shared_ptr<const ExtractionMap> extraction);
mr::ReducerFactory makeStructuralReducerFactory(const StructuralQuery& query);

/// Evaluates the query serially over the whole input (values supplied by
/// `fn`) — the ground-truth oracle for engine tests. Returns key-sorted
/// results.
std::vector<mr::KeyValue> runSerialOracle(const StructuralQuery& query,
                                          const ExtractionMap& extraction,
                                          const ValueFn& fn);

}  // namespace sidr::sh
