// Structural operators: the Mapper/Reducer pair that evaluates a
// StructuralQuery, plus a serial oracle for correctness testing.
//
// The mapper translates input keys to intermediate keys through the
// ExtractionMap and pre-aggregates per intermediate key (Hadoop's
// combiner, run map-side):
//   * distributive operators ship a constant-size Partial per key;
//   * median ships the full value list (holistic: no reduction legal);
//   * filter ships the surviving values (possibly an empty list — the
//     record still exists so count annotations stay exact).
// Every emitted record carries `represents` = the number of map-input
// pairs consumed into it, implementing the paper's count annotation
// (section 3.2.1, method 2).
#pragma once

#include <map>

#include "mapreduce/interfaces.hpp"
#include "scihadoop/extraction.hpp"
#include "scihadoop/record_reader.hpp"

namespace sidr::sh {

class StructuralMapper final : public mr::Mapper {
 public:
  StructuralMapper(const StructuralQuery& query,
                   std::shared_ptr<const ExtractionMap> extraction);

  void map(const nd::Coord& key, double value, mr::MapContext& ctx) override;
  void finish(mr::MapContext& ctx) override;

 private:
  struct CellState {
    mr::Partial partial;
    std::vector<double> list;
    std::uint64_t consumed = 0;
  };

  StructuralQuery query_;
  std::shared_ptr<const ExtractionMap> extraction_;
  std::map<nd::Coord, CellState> cells_;
  // Last (intermediate key -> cell) lookup: a row-major record stream
  // hits the same extraction cell extractionShape[last] times in a row,
  // so the tree lookup is paid once per run. std::map node pointers are
  // stable under insertion, and nothing erases until finish().
  const nd::Coord* lastKp_ = nullptr;
  CellState* lastCell_ = nullptr;
};

class StructuralReducer final : public mr::Reducer {
 public:
  explicit StructuralReducer(const StructuralQuery& query) : query_(query) {}

  void reduce(const nd::Coord& key, std::span<const mr::Value* const> values,
              mr::ReduceContext& ctx) override;

 private:
  StructuralQuery query_;
};

/// Finalizes a merged partial / value list into the operator's output
/// value (shared by the reducer and the serial oracle).
mr::Value finalizeCell(const StructuralQuery& query, const mr::Partial& p,
                       std::vector<double>&& list);

/// Factories plugging into mr::JobSpec.
mr::MapperFactory makeStructuralMapperFactory(
    const StructuralQuery& query,
    std::shared_ptr<const ExtractionMap> extraction);
mr::ReducerFactory makeStructuralReducerFactory(const StructuralQuery& query);

/// Evaluates the query serially over the whole input (values supplied by
/// `fn`) — the ground-truth oracle for engine tests. Returns key-sorted
/// results. Rejects kJoin (use runJoinOracle).
std::vector<mr::KeyValue> runSerialOracle(const StructuralQuery& query,
                                          const ExtractionMap& extraction,
                                          const ValueFn& fn);

// --- two-array structural join (OperatorKind::kJoin, DESIGN.md §18) ---

/// Map-side operator for ONE side of the join: buffers each cell's
/// surviving values (strictly greater than the side's threshold),
/// then emits one list per cell with the side tag prepended —
/// list[0] is 0.0 (left) or 1.0 (right), the rest the surviving
/// values — so the reducer can pair the two sides of a shared key.
/// A cell whose values all fail the threshold still emits (an empty
/// tagged list): `represents` counts consumed inputs pre-filter, so
/// count-annotation gating stays exact.
class JoinSideMapper final : public mr::Mapper {
 public:
  JoinSideMapper(std::shared_ptr<const ExtractionMap> extraction,
                 double keepAbove, std::uint8_t side);

  void map(const nd::Coord& key, double value, mr::MapContext& ctx) override;
  void finish(mr::MapContext& ctx) override;

 private:
  struct CellState {
    std::vector<double> values;
    std::uint64_t consumed = 0;
  };

  std::shared_ptr<const ExtractionMap> extraction_;
  double keepAbove_;
  double sideTag_;
  std::map<nd::Coord, CellState> cells_;
  const nd::Coord* lastKp_ = nullptr;
  CellState* lastCell_ = nullptr;
};

/// Reduce-side join: splits the fetched lists by side tag, sorts each
/// side ascending (making the output independent of merge order, hence
/// of shuffle regime, transport and partition refinement), and emits
/// the nested-loop products left[i]*right[j], j fastest.
class JoinReducer final : public mr::Reducer {
 public:
  void reduce(const nd::Coord& key, std::span<const mr::Value* const> values,
              mr::ReduceContext& ctx) override;
};

/// The synthesized right-side query of a join: the JoinSpec's geometry
/// under the left query's edge mode, renumbered keys. Single source of
/// truth for planner, oracle and tests building the right ExtractionMap.
StructuralQuery joinRightQuery(const StructuralQuery& query);

mr::MapperFactory makeJoinMapperFactory(
    const StructuralQuery& query,
    std::shared_ptr<const ExtractionMap> extraction, std::uint8_t side);
mr::ReducerFactory makeJoinReducerFactory();

/// Serial nested-loop evaluation of a kJoin query over both inputs —
/// the join analogue of runSerialOracle. `left`/`right` must share an
/// instance grid; `represents` of each record is the total inputs
/// consumed from BOTH cells.
std::vector<mr::KeyValue> runJoinOracle(const StructuralQuery& query,
                                        const ExtractionMap& left,
                                        const ExtractionMap& right,
                                        const ValueFn& leftFn,
                                        const ValueFn& rightFn);

}  // namespace sidr::sh
