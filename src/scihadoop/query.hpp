// Structural query specification (SciHadoop's array query language).
//
// A structural query names an input variable, the operator applied to
// each unit of data, and the extraction shape describing those units:
// the shape is logically tiled over the input keyspace K, each instance
// becoming one intermediate key in K' (paper section 2.4.2). Optional
// stride lengths space the instances apart (strided access).
#pragma once

#include <limits>
#include <optional>
#include <string>

#include "ndarray/region.hpp"

namespace sidr::sh {

enum class OperatorKind : std::uint8_t {
  kMean,    ///< distributive: average of each cell (e.g. weekly averages)
  kSum,     ///< distributive
  kMin,     ///< distributive
  kMax,     ///< distributive (24h variation queries build on min/max)
  kCount,   ///< distributive
  kRange,   ///< distributive: max - min (the paper's section 2.2 query
            ///< "find all locations where 24-hour variation exceeds X"
            ///< builds on this)
  kMedian,  ///< holistic: needs every value of the cell (paper Query 1)
  kFilter,  ///< list-valued: values above a threshold (paper Query 2)
  kSort,    ///< holistic, list-valued: the cell's values in ascending
            ///< order (section 2.2: "sort the data points for each day")
  kJoin,    ///< holistic, two-input: structural equi-join of two arrays
            ///< on their shared instance grid (SharesSkew-style); needs
            ///< StructuralQuery::join and QueryPlanner::planJoin
};

/// True for operators whose per-cell partials are constant-size
/// aggregates (combiners shrink data); false for operators that must
/// ship the full value list (median) or a data-dependent list (filter).
bool isDistributive(OperatorKind op);

/// How ragged edges (input extents not divisible by the extraction
/// shape) are handled.
enum class EdgeMode : std::uint8_t {
  /// Drop the partial instances; the paper "throws away the data from
  /// the 365-th day" when down-sampling 365 days by weeks.
  kTruncate,
  /// Keep partial instances (cells clipped at the boundary).
  kPad,
};

/// How intermediate keys are derived from extraction instances.
enum class KeyMode : std::uint8_t {
  /// k' = instance grid coordinate (dense renumbering). This is the
  /// down-sampling semantics: {157,34,82} -> {22,6,82} for eshape
  /// {7,5,1} (paper section 3, Area 2).
  kRenumber,
  /// k' = the instance's corner in the ORIGINAL coordinate space.
  /// Strided selections keep original coordinates, which is how
  /// patterned (e.g. all-even) intermediate keys arise — the key-skew
  /// pathology of paper section 4.3 / figure 13.
  kPreserveCoords,
};

/// The right side of a two-array structural join (OperatorKind::kJoin).
/// Both arrays are tiled by their own extraction shapes; the two
/// instance GRIDS must be identical — instance g of the left array
/// joins instance g of the right, so the grid is the shared keyspace
/// both map sides route into. Join semantics (frozen, pinned by
/// tests/skew_join_test.cpp): per instance, the surviving left values
/// (ascending) pair with the surviving right values (ascending) in
/// nested-loop order, emitting the products a*b; either side empty
/// yields an empty list but the instance's record still exists, so
/// count annotations stay exact.
struct JoinSpec {
  std::string variable;        ///< right-side input variable name
  nd::Coord inputShape;        ///< right-side input extents
  nd::Coord extractionShape;   ///< right-side cell shape (grids must match)
  std::optional<nd::Coord> stride;  ///< right-side spacing (>= eshape)

  /// Per-side survival filters: a value joins only when strictly
  /// greater. -infinity (the default) keeps everything — 0.0 would
  /// silently drop negative data.
  double leftThreshold = -std::numeric_limits<double>::infinity();
  double rightThreshold = -std::numeric_limits<double>::infinity();
};

struct StructuralQuery {
  std::string variable;            ///< input variable name

  /// Optional coordinate subset of the input the query addresses
  /// ("requesting all of the data for a given range of coordinates",
  /// section 2.4.2). Extraction instances tile the SUBSET; keys outside
  /// it produce nothing. Empty = the whole variable.
  std::optional<nd::Region> subset;
  OperatorKind op = OperatorKind::kMean;
  nd::Coord extractionShape;       ///< units of data the operator consumes
  std::optional<nd::Coord> stride; ///< spacing between instances (>= eshape)
  EdgeMode edgeMode = EdgeMode::kTruncate;
  KeyMode keyMode = KeyMode::kRenumber;
  double filterThreshold = 0.0;    ///< kFilter: emit values > threshold

  /// Upper bound on permissible intermediate-key skew, in keys per
  /// keyblock granule (paper section 3.1). 0 = let the system choose.
  nd::Index skewBound = 0;

  /// Second input array for OperatorKind::kJoin; must be set exactly
  /// when op == kJoin. The left side is described by the fields above.
  std::optional<JoinSpec> join;
};

/// Human-readable one-line description (for logs and bench output).
std::string describe(const StructuralQuery& q);

}  // namespace sidr::sh
