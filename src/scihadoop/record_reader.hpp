// RecordReaders over coordinate input splits.
//
// SciHadoop defines input splits in logical coordinates, so both the
// reader's input (a Region) and its output keys live in the same space
// K (paper section 2.4.1) — the property that makes I_i == K_T^i and
// unlocks SIDR's dependency reasoning.
#pragma once

#include <functional>
#include <memory>

#include "mapreduce/interfaces.hpp"
#include "scifile/dataset.hpp"

namespace sidr::sh {

/// Reads a coordinate region of an SNDF variable, emitting one
/// (coordinate, value) record per element in row-major order. Reads the
/// region in bulk (a handful of contiguous runs) as the scientific
/// access library would.
class DatasetRecordReader final : public mr::RecordReader {
 public:
  DatasetRecordReader(std::shared_ptr<sci::Dataset> dataset,
                      std::size_t varIdx, const nd::Region& region);

  bool next(nd::Coord& key, double& value) override;

  /// Row-run batch read: copies whole row tails out of the preloaded
  /// value buffer and synthesizes their keys by bumping the innermost
  /// coordinate, paying cursor carry once per run instead of per cell.
  std::size_t nextBatch(std::span<nd::Coord> keys,
                        std::span<double> values) override;

 private:
  std::shared_ptr<sci::Dataset> dataset_;
  nd::Region region_;
  std::vector<double> values_;
  nd::RegionCursor cursor_;
  std::size_t pos_ = 0;
};

/// Value function of a logical coordinate; lets experiments run over
/// datasets far larger than memory without materializing them.
using ValueFn = std::function<double(const nd::Coord&)>;

/// Emits (coordinate, fn(coordinate)) for every element of the region.
class SyntheticRecordReader final : public mr::RecordReader {
 public:
  SyntheticRecordReader(ValueFn fn, const nd::Region& region)
      : fn_(std::move(fn)), cursor_(region) {}

  bool next(nd::Coord& key, double& value) override {
    if (!cursor_.valid()) return false;
    key = cursor_.coord();
    value = fn_(key);
    cursor_.next();
    return true;
  }

  /// Row-run batch read (see DatasetRecordReader::nextBatch); values
  /// still come from one fn_ call per key.
  std::size_t nextBatch(std::span<nd::Coord> keys,
                        std::span<double> values) override;

 private:
  ValueFn fn_;
  nd::RegionCursor cursor_;
};

/// Factory helpers matching mr::RecordReaderFactory.
mr::RecordReaderFactory makeDatasetReaderFactory(
    std::shared_ptr<sci::Dataset> dataset, std::size_t varIdx);
mr::RecordReaderFactory makeSyntheticReaderFactory(ValueFn fn);

}  // namespace sidr::sh
