// ExtractionMap: the K -> K' key translation at the heart of SIDR.
//
// MapReduce's dataflow is opaque in three places (paper section 2.3.2);
// for structural queries the extraction shape resolves all three:
//   Area 1: splits are coordinate regions, so I_i == K_T^i trivially;
//   Area 2: an input key k maps to intermediate key(s) k' by floor
//           division through the extraction shape (and stride);
//   Area 3: the full intermediate keyspace K'^T is therefore computable
//           up front, enabling partition+ and dependency derivation.
// ExtractionMap implements Areas 2 and 3 for a query over a given input
// shape.
#pragma once

#include <optional>

#include "ndarray/region.hpp"
#include "scihadoop/query.hpp"

namespace sidr::sh {

class ExtractionMap {
 public:
  /// Builds the map for `query` over an input space of `inputShape`.
  /// Throws std::invalid_argument when the extraction shape / stride are
  /// inconsistent with the input shape.
  ExtractionMap(const StructuralQuery& query, nd::Coord inputShape);

  const nd::Coord& inputShape() const noexcept { return inputShape_; }
  const nd::Coord& extractionShape() const noexcept { return eshape_; }
  const nd::Coord& stride() const noexcept { return stride_; }

  /// The region of the input the query addresses (the query's subset,
  /// or the whole space). Instances tile this region from its corner.
  const nd::Region& domain() const noexcept { return domain_; }

  /// Shape of the instance grid: how many extraction instances exist per
  /// dimension after edge handling.
  const nd::Coord& instanceGridShape() const noexcept { return grid_; }

  /// Total number of instances (== |K'^T| in renumber mode).
  nd::Index instanceCount() const noexcept { return grid_.volume(); }

  /// Shape of the intermediate keyspace K' that keys are expressed in:
  /// the instance grid (renumber mode) or the input shape (preserve-
  /// coordinates mode, where keys stay sparse in the original space).
  const nd::Coord& intermediateSpaceShape() const noexcept {
    return intermediateSpace_;
  }

  /// Instance grid coordinate for input key `k`, or nullopt when k falls
  /// in a stride gap or a truncated ragged edge (such keys produce no
  /// intermediate data).
  std::optional<nd::Coord> instanceOf(const nd::Coord& k) const;

  /// Intermediate key for input key `k` (instance coordinate translated
  /// per the query's KeyMode), or nullopt as above.
  std::optional<nd::Coord> keyFor(const nd::Coord& k) const;

  /// Intermediate key corresponding to instance grid coordinate `g`.
  nd::Coord keyForInstance(const nd::Coord& g) const;

  /// Inverse of keyForInstance (used when mapping keyblocks back to
  /// instance ranges). Precondition: `kp` is a valid intermediate key.
  nd::Coord instanceForKey(const nd::Coord& kp) const;

  /// The input-space region covered by instance `g` (its cell), clipped
  /// to the input shape in pad mode.
  nd::Region cellOf(const nd::Coord& g) const;

  /// Number of input keys inside instance `g`'s cell (cells at ragged
  /// edges are smaller in pad mode).
  nd::Index cellVolume(const nd::Coord& g) const {
    return cellOf(g).volume();
  }

  /// Grid region of all instances whose cells intersect input region
  /// `r`, or nullopt when r touches no instance (entirely in gaps or the
  /// truncated tail). This powers split -> keyblock dependency
  /// derivation.
  std::optional<nd::Region> instanceRangeOf(const nd::Region& r) const;

 private:
  nd::Coord inputShape_;
  nd::Region domain_;
  nd::Coord eshape_;
  nd::Coord stride_;
  nd::Coord grid_;
  nd::Coord intermediateSpace_;
  KeyMode keyMode_;
  EdgeMode edgeMode_;
};

}  // namespace sidr::sh
