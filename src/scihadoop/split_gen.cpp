#include "scihadoop/split_gen.hpp"

#include <algorithm>
#include <stdexcept>

namespace sidr::sh {

namespace {

std::vector<mr::InputSplit> generateSlabs(const nd::Coord& inputShape,
                                          nd::Index targetElements,
                                          nd::Index snapMultiple) {
  if (!inputShape.isValidShape()) {
    throw std::invalid_argument("generateSplits: invalid input shape");
  }
  if (targetElements <= 0) {
    throw std::invalid_argument("generateSplits: target must be positive");
  }
  const std::size_t rank = inputShape.rank();

  // Find the shallowest dimension j whose trailing product fits the
  // target, then slice dimension j into runs of thickness c.
  std::size_t j = 0;
  nd::Index trailing = inputShape.volume();
  for (; j < rank; ++j) {
    trailing /= inputShape[j];
    if (trailing <= targetElements) break;
  }
  if (j == rank) j = rank - 1;  // single elements still too big: use last dim

  nd::Index c = targetElements / (trailing > 0 ? trailing : 1);
  if (c < 1) c = 1;
  if (c > inputShape[j]) c = inputShape[j];
  if (snapMultiple > 1 && c >= snapMultiple) {
    c -= c % snapMultiple;  // align slab boundary to extraction stride
  }

  // Enumerate prefix coordinates (dims < j) x runs of dim j.
  std::vector<mr::InputSplit> splits;
  nd::Coord prefixShape = nd::Coord::ones(rank);
  for (std::size_t d = 0; d < j; ++d) prefixShape[d] = inputShape[d];
  nd::Region prefixRegion = nd::Region::wholeSpace(prefixShape);
  for (nd::RegionCursor cur(prefixRegion); cur.valid(); cur.next()) {
    for (nd::Index start = 0; start < inputShape[j]; start += c) {
      nd::Coord corner = cur.coord();
      nd::Coord shape = inputShape;
      for (std::size_t d = 0; d < j; ++d) shape[d] = 1;
      corner[j] = start;
      shape[j] = std::min(c, inputShape[j] - start);
      splits.push_back(mr::InputSplit::single(
          static_cast<std::uint32_t>(splits.size()),
          nd::Region(corner, shape)));
    }
  }
  return splits;
}

}  // namespace

std::vector<mr::InputSplit> generateSplits(const nd::Coord& inputShape,
                                           const SplitOptions& options) {
  return generateSlabs(inputShape, options.targetElements, 1);
}

std::vector<mr::InputSplit> generateSplits(const nd::Coord& inputShape,
                                           const ExtractionMap& extraction,
                                           const SplitOptions& options) {
  nd::Index snap = 1;
  if (options.alignToExtraction) {
    // Snap in the dimension the generator will slice; conservatively use
    // the leading stride (slicing happens in the shallowest dimension
    // that fits, which is dimension 0 for all paper workloads).
    snap = extraction.stride()[0];
  }
  return generateSlabs(inputShape, options.targetElements, snap);
}

std::vector<mr::InputSplit> generateByteRangeSplits(
    const nd::Coord& inputShape, std::size_t splitCount) {
  if (!inputShape.isValidShape()) {
    throw std::invalid_argument("generateByteRangeSplits: invalid shape");
  }
  if (splitCount == 0) {
    throw std::invalid_argument("generateByteRangeSplits: count must be > 0");
  }
  const nd::Index total = inputShape.volume();
  const auto n = static_cast<nd::Index>(
      std::min<std::size_t>(splitCount, static_cast<std::size_t>(total)));
  // Balanced linear element ranges, exactly like HDFS block boundaries
  // cutting a row-major file without regard for the array structure.
  std::vector<mr::InputSplit> splits;
  splits.reserve(static_cast<std::size_t>(n));
  const nd::Index q = total / n;
  const nd::Index rem = total % n;
  nd::Index start = 0;
  for (nd::Index i = 0; i < n; ++i) {
    nd::Index len = q + (i < rem ? 1 : 0);
    mr::InputSplit split;
    split.id = static_cast<std::uint32_t>(i);
    split.regions = nd::linearRangeToRegions(start, start + len, inputShape);
    splits.push_back(std::move(split));
    start += len;
  }
  return splits;
}

nd::Index targetElementsForCount(const nd::Coord& inputShape,
                                 std::size_t desiredSplitCount) {
  if (desiredSplitCount == 0) {
    throw std::invalid_argument("targetElementsForCount: count must be > 0");
  }
  nd::Index total = inputShape.volume();
  nd::Index target = total / static_cast<nd::Index>(desiredSplitCount);
  return target > 0 ? target : 1;
}

}  // namespace sidr::sh
