// Workload builder: turns a StructuralQuery over a (possibly huge,
// purely logical) dataset geometry into a SimJob for the cluster
// simulator.
//
// Nothing here is hand-waved about ROUTING: intermediate volumes are
// accumulated by walking every extraction instance each split touches
// and routing its key through the REAL partitioner (ModuloPartitioner
// for Hadoop/SciHadoop, PartitionPlus for SIDR), and SIDR dependency
// sets come from the real DependencyCalculator. Only the COST model
// (bytes per element, CPU seconds per byte, locality fractions) is
// calibrated to the paper's 2013 testbed.
#pragma once

#include <functional>

#include "sidr/planner.hpp"
#include "sim/sim_engine.hpp"

namespace sidr::sim {

/// How map input splits are generated.
enum class SplitLayout : std::uint8_t {
  /// SciHadoop/SIDR coordinate slabs (whole leading rows).
  kCoordinateSlabs,
  /// Stock Hadoop byte ranges: balanced linear element ranges that cut
  /// rows and extraction cells arbitrarily (the paper's 2,781 splits).
  kByteRange,
};

struct WorkloadSpec {
  sh::StructuralQuery query;
  nd::Coord inputShape;
  std::uint64_t bytesPerElement = 4;  ///< int32 measurements, as the paper
  std::size_t numSplits = 2781;       ///< paper: 348 GB / 128 MB blocks
  SplitLayout splitLayout = SplitLayout::kCoordinateSlabs;

  /// Intermediate bytes produced per input byte consumed (after the
  /// map-side combine): ~1 for holistic median (full value lists),
  /// ~selectivity for filters, << 1 for distributive aggregates.
  double intermediateFactor = 1.0;
  /// Fixed key/header overhead per intermediate record.
  double recordOverheadBytes = 16.0;

  /// Map compute cost per input byte for coordinate-aware readers
  /// (SciHadoop, SIDR).
  double mapCpuSecondsPerByte = 1.5e-7;
  /// Multiplier for structure-oblivious Hadoop (byte-oriented splits
  /// force record reassembly across block boundaries).
  double hadoopCpuPenalty = 3.6;
  double hadoopLocalityFraction = 0.30;
  double scihadoopLocalityFraction = 0.97;

  /// Reduce compute cost per merged intermediate byte.
  double reduceCpuSecondsPerByte = 4.0e-9;

  /// Output bytes emitted per extraction instance (one value each for
  /// aggregates; larger for filters that keep lists).
  double outputBytesPerInstance = 4.0;

  /// Per-instance load multiplier (DESIGN.md §18): scales the
  /// intermediate and output bytes an extraction instance produces, on
  /// top of intermediateFactor — how value-dependent skew (filter
  /// survivors clustering spatially) is modeled. Null = uniform load.
  std::function<double(const nd::Coord&)> instanceLoadFactor;

  /// Mirror of core::PlanOptions::skewAdapt: under kSidr, refine the
  /// partition+ granule deal against the per-granule load implied by
  /// instanceLoadFactor (the simulator sees the EXACT distribution, so
  /// this models a perfectly-informed sampling pass) before routing.
  bool skewAdapt = false;
};

/// A built simulator job plus the structural artifacts it was derived
/// from (for reporting: Table 3 wants both connection counts).
struct BuiltWorkload {
  SimJob job;
  std::shared_ptr<const sh::ExtractionMap> extraction;
  std::shared_ptr<const core::PartitionPlus> partitionPlus;  ///< SIDR only
  core::DependencyInfo dependencies;                         ///< SIDR only
  std::uint64_t stockConnections = 0;  ///< maps x reduces
  std::size_t numSplits = 0;
};

/// Builds the SimJob for one system/reducer-count combination.
BuiltWorkload buildWorkload(const WorkloadSpec& spec, core::SystemMode system,
                            std::uint32_t numReduces,
                            std::vector<std::uint32_t> reducePriority = {});

/// Paper Query 1: median over {7200,360,720,50} windspeed data with
/// extraction shape {2,36,36,10} (section 4.1).
WorkloadSpec query1Workload();

/// Paper Query 2: 3-sigma filter over the same-size normal dataset with
/// extraction shape {2,40,40,10} (~0.1% selectivity).
WorkloadSpec query2Workload();

/// Section 4.3 / figure 13 workload: a strided selection that preserves
/// original (all-even) coordinates, starving odd reducers under modulo
/// partitioning.
WorkloadSpec skewWorkload();

/// DESIGN.md §18 workload: the Query-2 filter whose survivors cluster
/// in the first 1/8 of the time axis (a storm front) — key counts stay
/// uniform but LOAD is hot, the case skew-adaptive refinement targets.
/// Toggle skewAdapt per arm to compare.
WorkloadSpec hotspotFilterWorkload();

}  // namespace sidr::sim
