#include "sim/workload.hpp"

#include <cmath>

namespace sidr::sim {

BuiltWorkload buildWorkload(const WorkloadSpec& spec, core::SystemMode system,
                            std::uint32_t numReduces,
                            std::vector<std::uint32_t> reducePriority) {
  BuiltWorkload out;
  auto extraction = std::make_shared<const sh::ExtractionMap>(spec.query,
                                                              spec.inputShape);
  out.extraction = extraction;

  std::vector<mr::InputSplit> splits;
  if (spec.splitLayout == SplitLayout::kByteRange) {
    splits = sh::generateByteRangeSplits(spec.inputShape, spec.numSplits);
  } else {
    sh::SplitOptions splitOpts;
    splitOpts.targetElements =
        sh::targetElementsForCount(spec.inputShape, spec.numSplits);
    splits = sh::generateSplits(spec.inputShape, *extraction, splitOpts);
  }
  out.numSplits = splits.size();

  // Real partitioner for the system under test. Sailfish partitions the
  // OBSERVED key set post hoc into balanced runs — volume-wise this is
  // what partition+ computes up front, so we reuse it for routing while
  // keeping Sailfish's strengthened-barrier execution semantics.
  auto loadOf = [&](const nd::Coord& g) {
    return spec.instanceLoadFactor ? spec.instanceLoadFactor(g) : 1.0;
  };
  std::shared_ptr<const mr::Partitioner> partitioner;
  if (system == core::SystemMode::kSidr ||
      system == core::SystemMode::kSailfish) {
    auto pp = std::make_shared<core::PartitionPlus>(extraction, numReduces,
                                                    spec.query.skewBound);
    if (spec.skewAdapt && system == core::SystemMode::kSidr) {
      // The simulator knows the exact per-instance load, so the
      // refinement pre-pass aggregates it per granule directly — the
      // perfectly-informed limit of the planner's sampling stage.
      std::vector<double> weights(
          static_cast<std::size_t>(pp->granuleCount()), 0.0);
      const nd::Coord& grid = extraction->instanceGridShape();
      for (nd::RegionCursor g(nd::Region::wholeSpace(grid)); g.valid();
           g.next()) {
        const nd::Index granule =
            nd::linearize(g.coord(), grid) / pp->granuleSize();
        weights[static_cast<std::size_t>(granule)] +=
            static_cast<double>(extraction->cellVolume(g.coord())) *
            loadOf(g.coord());
      }
      pp->refine(weights);
    }
    std::shared_ptr<const core::PartitionPlus> frozen = std::move(pp);
    if (system == core::SystemMode::kSidr) out.partitionPlus = frozen;
    partitioner = frozen;
  } else {
    partitioner = std::make_shared<const mr::ModuloPartitioner>(
        extraction->intermediateSpaceShape());
  }

  SimJob& job = out.job;
  job.numMaps = static_cast<std::uint32_t>(splits.size());
  job.numReduces = numReduces;
  job.mode = (system == core::SystemMode::kSidr)
                 ? mr::ExecutionMode::kSidr
                 : mr::ExecutionMode::kGlobalBarrier;
  job.deferFetchUntilAllMaps = (system == core::SystemMode::kSailfish);
  job.reducePriority = std::move(reducePriority);

  job.splitBytes.resize(splits.size());
  job.mapOutput.resize(splits.size());
  job.reduceInputBytes.assign(numReduces, 0);
  job.reduceOutputBytes.assign(numReduces, 0);

  // Walk every extraction instance each split touches and route its key
  // through the real partitioner; accumulate shuffle volumes.
  std::vector<std::unordered_map<std::uint32_t, double>> acc(splits.size());
  for (const mr::InputSplit& split : splits) {
    job.splitBytes[split.id] =
        static_cast<std::uint64_t>(split.volume()) * spec.bytesPerElement;
    for (const nd::Region& region : split.regions) {
      auto range = extraction->instanceRangeOf(region);
      if (!range) continue;
      for (nd::RegionCursor g(*range); g.valid(); g.next()) {
        auto overlap = extraction->cellOf(g.coord()).intersect(region);
        if (!overlap) continue;
        std::uint32_t kb = partitioner->partition(
            extraction->keyForInstance(g.coord()), numReduces);
        double bytes = static_cast<double>(overlap->volume()) *
                           static_cast<double>(spec.bytesPerElement) *
                           spec.intermediateFactor * loadOf(g.coord()) +
                       spec.recordOverheadBytes;
        acc[split.id][kb] += bytes;
      }
    }
  }
  for (const mr::InputSplit& split : splits) {
    for (const auto& [kb, bytes] : acc[split.id]) {
      auto b = static_cast<std::uint64_t>(bytes);
      job.mapOutput[split.id].emplace_back(kb, b);
      job.reduceInputBytes[kb] += b;
    }
  }

  // Output volume: one emission per extraction instance, charged to the
  // keyblock that owns it (iterate instances once, via whole-space
  // range rows to stay cheap).
  {
    const nd::Coord& grid = extraction->instanceGridShape();
    nd::Coord rowShape = grid;
    rowShape[grid.rank() - 1] = 1;
    for (nd::RegionCursor row(nd::Region::wholeSpace(rowShape)); row.valid();
         row.next()) {
      // All instances of a row land in a contiguous keyblock interval.
      nd::Coord c = row.coord();
      for (nd::Index j = 0; j < grid[grid.rank() - 1]; ++j) {
        c[grid.rank() - 1] = j;
        std::uint32_t kb = partitioner->partition(
            extraction->keyForInstance(c), numReduces);
        job.reduceOutputBytes[kb] += static_cast<std::uint64_t>(
            spec.outputBytesPerInstance * loadOf(c));
      }
    }
  }

  if (system == core::SystemMode::kSidr) {
    core::DependencyCalculator calc(out.partitionPlus);
    out.dependencies = calc.computeAll(splits);
    job.reduceDeps = out.dependencies.keyblockToSplits;
  }

  job.mapCpuSecondsPerByte = spec.mapCpuSecondsPerByte;
  job.reduceCpuSecondsPerByte = spec.reduceCpuSecondsPerByte;
  job.localityFraction = spec.scihadoopLocalityFraction;
  if (system == core::SystemMode::kHadoop) {
    job.mapCpuSecondsPerByte *= spec.hadoopCpuPenalty;
    job.localityFraction = spec.hadoopLocalityFraction;
  }

  out.stockConnections =
      static_cast<std::uint64_t>(job.numMaps) * numReduces;
  return out;
}

WorkloadSpec query1Workload() {
  WorkloadSpec w;
  w.query.variable = "windspeed";
  w.query.op = sh::OperatorKind::kMedian;
  w.query.extractionShape = nd::Coord{2, 36, 36, 10};
  w.inputShape = nd::Coord{7200, 360, 720, 50};
  w.bytesPerElement = 4;
  w.numSplits = 2781;
  // Median is holistic: the combiner can only concatenate, so the whole
  // input flows to the reducers.
  w.intermediateFactor = 1.0;
  w.mapCpuSecondsPerByte = 1.5e-7;    // sort/bucket per value (Opteron 2212 era)
  w.reduceCpuSecondsPerByte = 8.0e-9; // sort + select over merged lists
  w.outputBytesPerInstance = 4.0;
  return w;
}

WorkloadSpec query2Workload() {
  WorkloadSpec w;
  w.query.variable = "measurements";
  w.query.op = sh::OperatorKind::kFilter;
  w.query.filterThreshold = 3.0;  // 3 sigma over a standard normal
  w.query.extractionShape = nd::Coord{2, 40, 40, 10};
  w.inputShape = nd::Coord{7200, 360, 720, 50};
  w.bytesPerElement = 4;
  w.numSplits = 2781;
  // ~0.1% of values survive a >3-sigma filter; intermediate data is a
  // tiny fraction of the input.
  w.intermediateFactor = 0.00135;
  w.mapCpuSecondsPerByte = 8.5e-8;  // one compare per value, no sort
  w.reduceCpuSecondsPerByte = 8.0e-9;
  // Filter cells emit small lists rather than one aggregate.
  w.outputBytesPerInstance = 4.0 * 43.2;  // 32k-value cells x 0.135%
  return w;
}

WorkloadSpec skewWorkload() {
  WorkloadSpec w;
  w.query.variable = "windspeed";
  w.query.op = sh::OperatorKind::kMedian;
  // A query that preserves original coordinates in its intermediate
  // keys (e.g. a selection whose output stays addressed in the input's
  // space): every key coordinate is a multiple of the extraction shape,
  // so the linearized binary representation is always even and the
  // modulo partitioner can only hit even-numbered keyblocks
  // (section 4.3: "we've seen cases where every intermediate key was
  // even").
  w.query.extractionShape = nd::Coord{2, 36, 36, 10};
  w.query.keyMode = sh::KeyMode::kPreserveCoords;
  w.inputShape = nd::Coord{7200, 360, 720, 50};
  w.bytesPerElement = 4;
  w.numSplits = 2781;
  w.intermediateFactor = 1.0;
  w.mapCpuSecondsPerByte = 1.5e-7;
  w.reduceCpuSecondsPerByte = 8.0e-9;
  w.outputBytesPerInstance = 4.0;
  return w;
}

WorkloadSpec hotspotFilterWorkload() {
  WorkloadSpec w = query2Workload();
  // Survivors cluster in the first 1/8 of the time axis (a storm
  // front): those instances carry 50x the survivor load of the rest.
  // Key COUNTS stay perfectly uniform — partition+'s count-balanced
  // deal is blind to this, which is exactly what skew-adaptive
  // refinement corrects.
  w.instanceLoadFactor = [](const nd::Coord& g) {
    return g[0] < 450 ? 50.0 : 1.0;  // grid[0] = 3600 instances
  };
  return w;
}

}  // namespace sidr::sim
