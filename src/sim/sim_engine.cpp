#include "sim/sim_engine.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <stdexcept>
#include <unordered_map>

#include "dfs/namenode.hpp"

namespace sidr::sim {

std::vector<double> SimResult::sortedMapEnds() const {
  std::vector<double> t;
  t.reserve(maps.size());
  for (const auto& m : maps) t.push_back(m.end);
  std::sort(t.begin(), t.end());
  return t;
}

std::vector<double> SimResult::sortedReduceEnds() const {
  std::vector<double> t;
  t.reserve(reduces.size());
  for (const auto& r : reduces) t.push_back(r.end);
  std::sort(t.begin(), t.end());
  return t;
}

namespace {

/// FIFO device: acquiring `work` seconds starting no earlier than
/// `floor` returns the completion time. Long operations are split into
/// ~1 s chunks by the callers below, so concurrent users interleave and
/// the device approximates fair sharing instead of head-of-line
/// blocking a 300-second merge in front of a 1-second map read.
class Device {
 public:
  double acquire(double floor, double work) {
    double start = std::max(floor, freeAt_);
    freeAt_ = start + work;
    return freeAt_;
  }

 private:
  double freeAt_ = 0;
};

struct Event {
  double time;
  std::uint64_t seq;
  std::function<void()> fn;
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const {
    return a.time > b.time || (a.time == b.time && a.seq > b.seq);
  }
};

constexpr double kIoChunkSeconds = 1.0;

}  // namespace

struct ClusterSim::Impl {
  Impl(const ClusterConfig& c, const SimJob& j)
      : cfg(c), job(j), rng(c.seed), namenode(c.numNodes, 3, c.seed) {}

  const ClusterConfig& cfg;
  const SimJob& job;
  std::mt19937_64 rng;
  dfs::Namenode namenode;

  // --- event queue ---
  std::priority_queue<Event, std::vector<Event>, EventLater> events;
  std::uint64_t seq = 0;
  double now = 0;

  void at(double t, std::function<void()> fn) {
    events.push(Event{std::max(t, now), seq++, std::move(fn)});
  }

  // --- cluster state ---
  struct Node {
    std::uint32_t freeMapSlots = 0;
    std::uint32_t freeReduceSlots = 0;
    Device hdfsDisk;  ///< aggregate of the node's 3 HDFS drives
    Device tempDisk;  ///< the OS/temp drive: spills, shuffle, merges
    Device nic;
  };
  std::vector<Node> nodes;

  /// Performs `work` seconds on `dev` in ~1 s chunks, then calls
  /// `done`. Chunking lets concurrent users of the device interleave.
  void ioChunked(Device& dev, double work, std::function<void()> done) {
    if (work <= 0) {
      at(now, std::move(done));
      return;
    }
    double piece = std::min(kIoChunkSeconds, work);
    double end = dev.acquire(now, piece);
    double remaining = work - piece;
    at(end, [this, &dev, remaining, done = std::move(done)]() mutable {
      ioChunked(dev, remaining, std::move(done));
    });
  }

  // --- input placement (one HDFS block per split) ---
  dfs::FileId inputFile = 0;
  std::vector<std::uint64_t> splitOffset;

  // --- map state ---
  std::deque<std::uint32_t> eligibleMaps;
  std::vector<bool> mapQueued;
  std::vector<bool> mapDone;
  std::uint32_t mapsDone = 0;

  // --- reduce state ---
  std::vector<std::vector<std::uint32_t>> deps;  // resolved I_l
  std::vector<std::vector<std::uint32_t>> mapToReduces;
  std::vector<std::uint32_t> depsRemaining;
  // Which keyblocks each map's completion has been credited to; only a
  // not-yet-credited completion decrements depsRemaining, so recovery
  // re-runs cannot double-satisfy a dependency.
  std::vector<std::vector<bool>> depCredited;  // [map] -> per-keyblock
  std::vector<bool> reduceFailedOnce;
  std::vector<bool> mapFailedOnce;
  std::vector<std::uint32_t> mapRunCount;
  std::vector<std::uint32_t> fetchesRemaining;
  std::vector<bool> reduceScheduled;
  std::vector<bool> reduceMergeStarted;
  std::vector<std::uint32_t> reduceNode;
  std::vector<std::uint32_t> priorityOrder;
  std::uint32_t nextPriorityPos = 0;

  // Sparse shuffle volumes: bytes from (map, keyblock).
  std::vector<std::unordered_map<std::uint32_t, std::uint64_t>> outBytes;
  std::vector<std::uint64_t> mapTotalOutBytes;

  // --- trace emission (obs schema, virtual lanes) ---
  static constexpr std::uint32_t kReduceLane = 1u << 20;
  static constexpr std::uint32_t kFetchLane = 2u << 20;
  std::vector<std::uint32_t> mapAttempt;     // executions started, per map
  std::vector<std::uint32_t> reduceAttempt;  // merges started, per keyblock
  std::vector<double> mergeStart;            // current attempt's merge start
  std::uint32_t fetchSeq = 0;  // each fetch gets its own lane: concurrent
                               // fetches of one keyblock may cross in time
                               // and would break per-lane nesting otherwise

  void addSpan(obs::Phase phase, obs::TaskSide side, std::uint32_t taskId,
               std::uint32_t attempt, std::uint32_t keyblock,
               std::uint32_t lane, double start, double end,
               std::uint64_t bytes = 0,
               obs::Outcome outcome = obs::Outcome::kOk) {
    obs::Span s;
    s.start = start;
    s.end = end;
    s.bytes = bytes;
    s.taskId = taskId;
    s.attempt = attempt;
    s.keyblock = keyblock;
    s.tid = lane;
    s.phase = phase;
    s.side = side;
    s.outcome = outcome;
    result.trace.spans.push_back(s);
  }

  // --- HOP estimate state ---
  std::vector<double> reduceFetchedBytes;     // bytes landed per reduce
  std::vector<double> hopThresholds{0.25, 0.5, 0.75};
  std::size_t nextThreshold = 0;
  std::uint32_t snapshotsOutstanding = 0;
  double snapshotLatest = 0;

  SimResult result;

  bool isSidr() const { return job.mode == mr::ExecutionMode::kSidr; }

  void markMapEligible(std::uint32_t m) {
    if (mapDone[m] || mapQueued[m]) return;
    eligibleMaps.push_back(m);
    mapQueued[m] = true;
  }

  // ---- map lifecycle: read -> compute -> spill -> done ----

  void startMap(std::uint32_t m, std::uint32_t node, bool local) {
    mapQueued[m] = false;  // leaves the queue for good
    result.maps[m].start = now;
    double bytes = static_cast<double>(job.splitBytes[m]);
    double readWork;
    Device* readDev;
    if (local) {
      readWork = bytes / cfg.diskBandwidth;
      readDev = &nodes[node].hdfsDisk;
    } else {
      // Remote read: stream over the destination NIC (the bottleneck;
      // the source serves from page cache / an idle replica drive).
      readWork = bytes / cfg.nicBandwidth;
      readDev = &nodes[node].nic;
    }
    double noise = 1.0;
    if (cfg.mapNoiseSigma > 0) {
      std::lognormal_distribution<double> dist(0.0, cfg.mapNoiseSigma);
      noise = dist(rng);
    }
    double cpuSeconds = bytes * job.mapCpuSecondsPerByte * noise;
    // Sorted map output spills to the node's temp drive.
    // Volatile-intermediate mode (section 6) keeps map output in memory:
    // the non-failure-case saving is exactly this skipped spill.
    double spillWork =
        job.volatileIntermediate
            ? 0.0
            : static_cast<double>(mapTotalOutBytes[m]) /
                  cfg.tempDiskBandwidth;

    const std::uint32_t attempt = ++mapAttempt[m];
    const std::uint64_t readBytes = job.splitBytes[m];
    at(now + cfg.taskStartOverhead, [this, m, node, attempt, readBytes,
                                     readDev, readWork, cpuSeconds,
                                     spillWork] {
      const double tRead = now;
      ioChunked(*readDev, readWork, [this, m, node, attempt, readBytes, tRead,
                                     cpuSeconds, spillWork] {
        addSpan(obs::Phase::kRead, obs::TaskSide::kMap, m, attempt,
                obs::kNoId, m, tRead, now, readBytes);
        const double tCpu = now;
        at(now + cpuSeconds, [this, m, node, attempt, tCpu, spillWork] {
          addSpan(obs::Phase::kMap, obs::TaskSide::kMap, m, attempt,
                  obs::kNoId, m, tCpu, now);
          const double tSpill = now;
          ioChunked(nodes[node].tempDisk, spillWork,
                    [this, m, node, attempt, tSpill] {
                      if (!job.volatileIntermediate) {
                        addSpan(obs::Phase::kSpillWrite, obs::TaskSide::kMap,
                                m, attempt, obs::kNoId, m, tSpill, now,
                                mapTotalOutBytes[m]);
                      }
                      onMapDone(m, node);
                    });
        });
      });
    });
  }

  void onMapDone(std::uint32_t m, std::uint32_t node) {
    ++mapRunCount[m];
    if (mapRunCount[m] > 1) ++result.mapsReExecuted;
    // Injected failure: the map did its work but dies before committing
    // its output (mirrors the engine's attempt-level injection). The
    // slot frees up and the map re-queues for another full execution.
    if (!mapFailedOnce[m] &&
        std::find(job.failOnceMaps.begin(), job.failOnceMaps.end(), m) !=
            job.failOnceMaps.end()) {
      mapFailedOnce[m] = true;
      ++result.mapFailures;
      addSpan(obs::Phase::kTaskAttempt, obs::TaskSide::kMap, m, mapAttempt[m],
              obs::kNoId, m, result.maps[m].start, now, mapTotalOutBytes[m],
              obs::Outcome::kFail);
      ++nodes[node].freeMapSlots;
      markMapEligible(m);
      dispatch();
      return;
    }
    mapDone[m] = true;
    ++mapsDone;
    result.maps[m].end = now;
    addSpan(obs::Phase::kTaskAttempt, obs::TaskSide::kMap, m, mapAttempt[m],
            obs::kNoId, m, result.maps[m].start, now, mapTotalOutBytes[m]);
    ++nodes[node].freeMapSlots;
    for (std::uint32_t kb : mapToReduces[m]) {
      // Zero-width commit marker per destination keyblock at the moment
      // the map's output becomes fetchable — the sim analogue of the
      // engine's rename/pointer-flip publication, so the commit-before-
      // reduce gating invariant is checkable on simulator traces too.
      addSpan(obs::Phase::kRenameCommit, obs::TaskSide::kMap, m,
              mapAttempt[m], kb, m, now, now, fetchBytes(m, kb));
      if (depCredited[m][kb]) continue;
      depCredited[m][kb] = true;
      --depsRemaining[kb];
      if (reduceScheduled[kb] && !job.deferFetchUntilAllMaps) {
        startFetch(m, kb);
      }
    }
    maybeEmitHopSnapshots();
    // Sailfish semantics: keyblock contents only exist once every map
    // finished, so ALL fetches begin at the barrier.
    if (job.deferFetchUntilAllMaps && mapsDone == job.numMaps) {
      for (std::uint32_t kb = 0; kb < job.numReduces; ++kb) {
        if (reduceScheduled[kb]) {
          for (std::uint32_t dep : deps[kb]) startFetch(dep, kb);
        }
      }
    }
    dispatch();
  }

  // ---- shuffle ----

  std::uint64_t fetchBytes(std::uint32_t m, std::uint32_t kb) const {
    auto it = outBytes[m].find(kb);
    return it == outBytes[m].end() ? 0 : it->second;
  }

  void startFetch(std::uint32_t m, std::uint32_t kb) {
    ++result.shuffleConnections;
    double bytes = static_cast<double>(fetchBytes(m, kb));
    double bw = std::min(cfg.perConnectionCap, cfg.nicBandwidth);
    double wireWork = cfg.connectionLatency + bytes / bw;
    std::uint32_t node = reduceNode[kb];
    const double tFetch = now;
    const std::uint32_t lane = kFetchLane + fetchSeq++;
    const std::uint64_t byteCount = fetchBytes(m, kb);
    // Wire transfer, then the segment lands on the reduce node's temp
    // drive (Hadoop's shuffle writes fetched segments to disk, merging
    // them in the background during the copy phase).
    double landWork = bytes / cfg.tempDiskBandwidth;
    ioChunked(nodes[node].nic, wireWork, [this, node, landWork, bytes, kb,
                                          tFetch, lane, byteCount] {
      ioChunked(nodes[node].tempDisk, landWork, [this, bytes, kb, tFetch,
                                                 lane, byteCount] {
        addSpan(obs::Phase::kFetch, obs::TaskSide::kReduce, kb, 0, kb, lane,
                tFetch, now, byteCount);
        reduceFetchedBytes[kb] += bytes;
        onFetchDone(kb);
      });
    });
  }

  // ---- HOP estimate snapshots (section 5, MapReduce Online) ----

  void maybeEmitHopSnapshots() {
    if (!job.hopEstimates || snapshotsOutstanding > 0) return;
    while (nextThreshold < hopThresholds.size() &&
           static_cast<double>(mapsDone) >=
               hopThresholds[nextThreshold] *
                   static_cast<double>(job.numMaps)) {
      double fraction = hopThresholds[nextThreshold++];
      snapshotLatest = now;
      for (std::uint32_t kb = 0; kb < job.numReduces; ++kb) {
        if (!reduceScheduled[kb]) continue;
        ++snapshotsOutstanding;
        std::uint32_t node = reduceNode[kb];
        // Re-process everything fetched so far: one read of the landed
        // bytes plus the reduce function over them.
        double readWork = reduceFetchedBytes[kb] / cfg.tempDiskBandwidth;
        double cpuSeconds =
            reduceFetchedBytes[kb] * job.reduceCpuSecondsPerByte;
        ioChunked(nodes[node].tempDisk, readWork,
                  [this, fraction, cpuSeconds] {
                    at(now + cpuSeconds, [this, fraction] {
                      snapshotLatest = std::max(snapshotLatest, now);
                      if (--snapshotsOutstanding == 0) {
                        result.estimates.emplace_back(fraction,
                                                      snapshotLatest);
                        maybeEmitHopSnapshots();  // drain queued levels
                      }
                    });
                  });
      }
      if (snapshotsOutstanding > 0) break;  // finish this level first
    }
  }

  void onFetchDone(std::uint32_t kb) {
    --fetchesRemaining[kb];
    maybeStartMerge(kb);
  }

  // ---- reduce lifecycle ----

  void scheduleReduce(std::uint32_t kb, std::uint32_t node) {
    reduceScheduled[kb] = true;
    reduceNode[kb] = node;
    result.reduces[kb].start = now;
    if (isSidr()) {
      // Scheduling a reduce marks its dependency maps schedulable
      // (paper section 3.3).
      for (std::uint32_t m : deps[kb]) markMapEligible(m);
    }
    // Catch-up fetches for maps that finished before this reduce was
    // scheduled (Hadoop's copy phase does the same at reduce launch).
    // Under deferred (Sailfish) shuffle nothing is fetchable before the
    // last map, after which everything is.
    if (!job.deferFetchUntilAllMaps || mapsDone == job.numMaps) {
      for (std::uint32_t m : deps[kb]) {
        if (mapDone[m]) startFetch(m, kb);
      }
    }
    maybeStartMerge(kb);
  }

  void maybeStartMerge(std::uint32_t kb) {
    if (reduceMergeStarted[kb] || !reduceScheduled[kb]) return;
    if (depsRemaining[kb] > 0 || fetchesRemaining[kb] > 0) return;
    if (!isSidr() && mapsDone < job.numMaps) return;  // global barrier
    reduceMergeStarted[kb] = true;
    std::uint32_t node = reduceNode[kb];
    double bytes = static_cast<double>(job.reduceInputBytes[kb]);
    // Segments were background-merged during the copy phase (charged to
    // the temp drive as they landed); the final merge streams the full
    // input from temp into the reduce function. Extra on-disk passes
    // only appear when the segment count exceeds the merge fan-in.
    auto segments = static_cast<double>(deps[kb].size());
    // Background merging during the copy phase (already charged as the
    // landing write) keeps up to fanIn^2 segments consolidated; only
    // jobs beyond that pay extra on-disk passes after the barrier.
    double extraPasses = std::max(
        0.0, std::ceil(std::log(std::max(2.0, segments)) /
                       std::log(static_cast<double>(cfg.mergeFanIn))) -
                 2.0);
    double mergeWork =
        bytes * (1.0 + 2.0 * extraPasses) / cfg.tempDiskBandwidth;
    double cpuSeconds = bytes * job.reduceCpuSecondsPerByte;
    double writeWork =
        static_cast<double>(job.reduceOutputBytes[kb]) / cfg.diskBandwidth;
    // The attempt span starts HERE (merge start), not at scheduling:
    // every dependency commit happened at or before this instant, which
    // is exactly the gating invariant the trace checks encode.
    const std::uint32_t attempt = ++reduceAttempt[kb];
    mergeStart[kb] = now;
    const std::uint64_t mergeBytes = job.reduceInputBytes[kb];
    ioChunked(nodes[node].tempDisk, mergeWork, [this, kb, node, attempt,
                                                mergeBytes, cpuSeconds,
                                                writeWork] {
      addSpan(obs::Phase::kMerge, obs::TaskSide::kReduce, kb, attempt, kb,
              kReduceLane + kb, mergeStart[kb], now, mergeBytes);
      const double tCpu = now;
      at(now + cpuSeconds, [this, kb, node, attempt, tCpu, writeWork] {
        addSpan(obs::Phase::kReduce, obs::TaskSide::kReduce, kb, attempt, kb,
                kReduceLane + kb, tCpu, now);
        const double tWrite = now;
        ioChunked(nodes[node].hdfsDisk, writeWork,
                  [this, kb, node, attempt, tWrite] {
                    addSpan(obs::Phase::kOutputCommit, obs::TaskSide::kReduce,
                            kb, attempt, kb, kReduceLane + kb, tWrite, now,
                            job.reduceOutputBytes[kb]);
                    onReduceDone(kb, node);
                  });
      });
    });
  }

  void onReduceDone(std::uint32_t kb, std::uint32_t node) {
    // Injected failure: the reduce dies as it would commit. With
    // volatile intermediate data its inputs are gone; re-execute exactly
    // its I_l map subset (paper section 6). With persisted data the
    // reduce only re-fetches and re-merges.
    if (!reduceFailedOnce[kb] &&
        std::find(job.failOnceReduces.begin(), job.failOnceReduces.end(),
                  kb) != job.failOnceReduces.end()) {
      reduceFailedOnce[kb] = true;
      ++result.reduceFailures;
      addSpan(obs::Phase::kTaskAttempt, obs::TaskSide::kReduce, kb,
              reduceAttempt[kb], kb, kReduceLane + kb, mergeStart[kb], now,
              job.reduceInputBytes[kb], obs::Outcome::kFail);
      reduceMergeStarted[kb] = false;
      fetchesRemaining[kb] =
          static_cast<std::uint32_t>(deps[kb].size());
      if (job.volatileIntermediate) {
        for (std::uint32_t m : deps[kb]) {
          if (depCredited[m][kb]) {
            depCredited[m][kb] = false;
            ++depsRemaining[kb];
          }
          if (mapDone[m]) {
            mapDone[m] = false;
            --mapsDone;
          }
          markMapEligible(m);
        }
      } else {
        // Persisted segments: immediate catch-up re-fetch.
        for (std::uint32_t m : deps[kb]) startFetch(m, kb);
      }
      dispatch();
      return;
    }
    result.reduces[kb].end = now;
    addSpan(obs::Phase::kTaskAttempt, obs::TaskSide::kReduce, kb,
            reduceAttempt[kb], kb, kReduceLane + kb, mergeStart[kb], now,
            job.reduceInputBytes[kb]);
    ++nodes[node].freeReduceSlots;
    dispatch();
  }

  // ---- scheduling ----

  void dispatch() {
    // Reduce slots first (SIDR inverts scheduling; for stock the order
    // is id order and reduces just sit copying at the barrier).
    while (nextPriorityPos < job.numReduces) {
      bool assigned = false;
      for (std::uint32_t n = 0; n < cfg.numNodes; ++n) {
        if (nodes[n].freeReduceSlots == 0) continue;
        if (nextPriorityPos >= job.numReduces) break;
        --nodes[n].freeReduceSlots;
        scheduleReduce(priorityOrder[nextPriorityPos++], n);
        assigned = true;
      }
      if (!assigned) break;
    }
    // Map slots: locality-aware pick from the eligible queue.
    bool progress = true;
    while (progress && !eligibleMaps.empty()) {
      progress = false;
      for (std::uint32_t n = 0; n < cfg.numNodes && !eligibleMaps.empty();
           ++n) {
        while (nodes[n].freeMapSlots > 0 && !eligibleMaps.empty()) {
          // Probe the head of the queue for a split local to node n
          // (bounded scan, like Hadoop's locality-tree traversal).
          std::size_t probe = std::min<std::size_t>(eligibleMaps.size(), 64);
          std::size_t pick = 0;
          bool local = false;
          for (std::size_t i = 0; i < probe; ++i) {
            std::uint32_t m = eligibleMaps[i];
            if (namenode.isLocal(inputFile, splitOffset[m], job.splitBytes[m],
                                 n)) {
              pick = i;
              local = true;
              break;
            }
          }
          std::uint32_t m = eligibleMaps[pick];
          eligibleMaps.erase(eligibleMaps.begin() +
                             static_cast<std::ptrdiff_t>(pick));
          // The job's locality fraction caps how often reads are truly
          // local (byte-oriented splits over coordinate data miss even
          // when a replica is present).
          if (local) {
            std::uniform_real_distribution<double> u(0.0, 1.0);
            local = u(rng) < job.localityFraction;
          }
          --nodes[n].freeMapSlots;
          startMap(m, n, local);
          progress = true;
        }
      }
    }
  }

  SimResult run() {
    const std::uint32_t nm = job.numMaps;
    const std::uint32_t nr = job.numReduces;
    if (job.splitBytes.size() != nm || job.mapOutput.size() != nm) {
      throw std::invalid_argument("ClusterSim: malformed job (maps)");
    }
    if (job.reduceInputBytes.size() != nr ||
        job.reduceOutputBytes.size() != nr) {
      throw std::invalid_argument("ClusterSim: malformed job (reduces)");
    }
    if (isSidr() && job.reduceDeps.size() != nr) {
      throw std::invalid_argument("ClusterSim: SIDR job needs reduceDeps");
    }

    nodes = std::vector<Node>(cfg.numNodes);
    for (auto& n : nodes) {
      n.freeMapSlots = cfg.mapSlotsPerNode;
      n.freeReduceSlots = cfg.reduceSlotsPerNode;
    }

    // Register the input as one HDFS file, one block per split.
    std::uint64_t blockSize = nm > 0 ? std::max<std::uint64_t>(
                                           1, job.splitBytes[0])
                                     : 1;
    splitOffset.resize(nm);
    for (std::uint32_t m = 0; m < nm; ++m) {
      splitOffset[m] = static_cast<std::uint64_t>(m) * blockSize;
    }
    inputFile = namenode.addFile(
        "input", static_cast<std::uint64_t>(nm) * blockSize, blockSize);

    mapQueued.assign(nm, false);
    mapDone.assign(nm, false);
    result.maps.assign(nm, SimTaskTimes{});
    result.reduces.assign(nr, SimTaskTimes{});

    deps.resize(nr);
    for (std::uint32_t kb = 0; kb < nr; ++kb) {
      if (isSidr()) {
        deps[kb] = job.reduceDeps.at(kb);
      } else {
        deps[kb].resize(nm);
        for (std::uint32_t m = 0; m < nm; ++m) deps[kb][m] = m;
      }
    }
    mapToReduces.assign(nm, {});
    depsRemaining.assign(nr, 0);
    fetchesRemaining.assign(nr, 0);
    for (std::uint32_t kb = 0; kb < nr; ++kb) {
      depsRemaining[kb] = static_cast<std::uint32_t>(deps[kb].size());
      fetchesRemaining[kb] = depsRemaining[kb];
      for (std::uint32_t m : deps[kb]) mapToReduces[m].push_back(kb);
    }
    reduceScheduled.assign(nr, false);
    reduceMergeStarted.assign(nr, false);
    reduceNode.assign(nr, 0);
    reduceFailedOnce.assign(nr, false);
    mapFailedOnce.assign(nm, false);
    reduceFetchedBytes.assign(nr, 0.0);
    mapRunCount.assign(nm, 0);
    mapAttempt.assign(nm, 0);
    reduceAttempt.assign(nr, 0);
    mergeStart.assign(nr, 0.0);
    if (job.hopEstimates && isSidr()) {
      throw std::invalid_argument(
          "ClusterSim: HOP estimates apply to global-barrier mode");
    }
    depCredited.assign(nm, std::vector<bool>(nr, false));
    if ((job.volatileIntermediate || !job.failOnceReduces.empty()) &&
        !isSidr()) {
      throw std::invalid_argument(
          "ClusterSim: volatile intermediate / reduce failure injection "
          "require kSidr mode");
    }
    // Mirror the engine's fault-plan validation: a silently ignored
    // out-of-range id would make failure counters lie about the plan.
    for (std::uint32_t kb : job.failOnceReduces) {
      if (kb >= nr) {
        throw std::invalid_argument(
            "ClusterSim: failOnceReduces names keyblock out of range");
      }
    }
    for (std::uint32_t m : job.failOnceMaps) {
      if (m >= nm) {
        throw std::invalid_argument(
            "ClusterSim: failOnceMaps names map out of range");
      }
    }

    priorityOrder.resize(nr);
    if (job.reducePriority.empty()) {
      for (std::uint32_t kb = 0; kb < nr; ++kb) priorityOrder[kb] = kb;
    } else {
      priorityOrder = job.reducePriority;
    }

    outBytes.assign(nm, {});
    mapTotalOutBytes.assign(nm, 0);
    for (std::uint32_t m = 0; m < nm; ++m) {
      for (const auto& [kb, bytes] : job.mapOutput[m]) {
        outBytes[m][kb] += bytes;
        mapTotalOutBytes[m] += bytes;
      }
    }

    if (!isSidr()) {
      // Stock: every map is schedulable from the start.
      for (std::uint32_t m = 0; m < nm; ++m) markMapEligible(m);
    }
    dispatch();

    while (!events.empty()) {
      Event ev = events.top();
      events.pop();
      now = ev.time;
      ev.fn();
    }

    result.lastMapEnd = 0;
    for (const auto& m : result.maps) {
      result.lastMapEnd = std::max(result.lastMapEnd, m.end);
    }
    result.firstResult = result.reduces.empty() ? 0 : 1e300;
    result.totalTime = 0;
    for (const auto& r : result.reduces) {
      result.firstResult = std::min(result.firstResult, r.end);
      result.totalTime = std::max(result.totalTime, r.end);
    }
    result.trace.sortSpans();
    result.trace.addCounter("shuffle.connections", result.shuffleConnections);
    result.trace.addCounter("job.mapsReExecuted", result.mapsReExecuted);
    result.trace.addCounter("job.mapFailures", result.mapFailures);
    result.trace.addCounter("job.reduceFailures", result.reduceFailures);
    return result;
  }
};

ClusterSim::ClusterSim(ClusterConfig config, SimJob job)
    : config_(config), job_(std::move(job)) {}

SimResult ClusterSim::run() {
  Impl impl(config_, job_);
  return impl.run();
}

}  // namespace sidr::sim
