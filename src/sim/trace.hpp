// Trace post-processing: turn simulated task completion times into the
// completion-over-time series the paper plots, and aggregate multi-run
// statistics (figure 12's mean +/- stddev over 10 runs).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/sim_engine.hpp"

namespace sidr::sim {

/// (time, fraction complete) series from sorted completion times.
struct CompletionSeries {
  std::vector<double> times;
  std::vector<double> fractions;
};

/// Builds the series, down-sampled to at most `maxPoints` steps.
CompletionSeries completionSeries(const std::vector<double>& sortedEnds,
                                  std::size_t maxPoints = 60);

/// Time at which `fraction` of the tasks had completed (interpolating
/// on task counts; fraction in (0, 1]).
double timeAtFraction(const std::vector<double>& sortedEnds, double fraction);

/// Prints "label,time,fraction" CSV rows for a series.
void printSeriesCsv(std::ostream& os, const std::string& label,
                    const CompletionSeries& series);

/// Mean / stddev across runs of the time at each completion fraction
/// (error bars of figure 12).
struct FractionStats {
  std::vector<double> fractions;
  std::vector<double> meanTimes;
  std::vector<double> stddevTimes;
};

FractionStats fractionStats(
    const std::vector<std::vector<double>>& sortedEndsPerRun,
    std::size_t numPoints = 20);

/// Sorted end times of the final SUCCESSFUL attempt span of each task
/// on `side` — the obs-trace analogue of SimResult::sortedReduceEnds /
/// sortedMapEnds, so a trace alone reproduces the completion series
/// (and the differential test can pin the two surfaces to each other).
std::vector<double> sortedAttemptEnds(const obs::Trace& trace,
                                      obs::TaskSide side);

}  // namespace sidr::sim
