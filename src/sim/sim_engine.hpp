// Discrete-event simulator of a Hadoop 1.0 cluster running a MapReduce
// query under the three systems the paper compares.
//
// The paper's timing results (figures 9-13, Table 3) are properties of
// the cluster-level dataflow: barrier structure, dependency width, slot
// counts, disk/network transfer volumes and scheduling order. This DES
// models exactly those: nodes with map/reduce slots, a FIFO disk and NIC
// per node, HDFS replica placement for map locality, per-(map,reduce)
// shuffle transfers, merge passes and mode-dependent gating — while the
// task *content* (who produces how many bytes for whom) is produced by
// the REAL partitioners and dependency calculator from src/sidr, so the
// simulator inherits the library's actual routing behaviour.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "mapreduce/job.hpp"
#include "obs/trace.hpp"

namespace sidr::sim {

/// Cluster parameters; defaults reproduce the paper's testbed
/// (section 4): 24 worker nodes, 4 map + 3 reduce slots each, 3 HDFS
/// drives and one GigE link per node.
struct ClusterConfig {
  std::uint32_t numNodes = 24;
  std::uint32_t mapSlotsPerNode = 4;
  std::uint32_t reduceSlotsPerNode = 3;
  double diskBandwidth = 225e6;  ///< bytes/s aggregate (3 x 75 MB/s drives)
  double tempDiskBandwidth = 120e6;  ///< the OS/temp drive (spills, merges)
  double nicBandwidth = 117e6;   ///< bytes/s effective GigE
  double perConnectionCap = 117e6;  ///< max bytes/s of one shuffle fetch
  double connectionLatency = 2e-3;  ///< per-fetch setup cost (seconds)
  double taskStartOverhead = 1.0;   ///< scheduling + JVM start (seconds)
  std::uint32_t mergeFanIn = 20;    ///< io.sort.factor (10 by default in Hadoop 1.0; tuned clusters ran 20-100)
  double mapNoiseSigma = 0.0;  ///< lognormal sigma on map compute time
  std::uint64_t seed = 42;
};

/// One simulated job. Byte/element volumes are supplied by the workload
/// builder (sim/workload.hpp) which derives them from real geometry.
struct SimJob {
  mr::ExecutionMode mode = mr::ExecutionMode::kGlobalBarrier;
  std::uint32_t numMaps = 0;
  std::uint32_t numReduces = 0;

  std::vector<std::uint64_t> splitBytes;  ///< input bytes per map

  /// Shuffle volumes: for each map, (keyblock, bytes) pairs. Absent
  /// pairs are zero-byte; stock mode still opens a connection for them.
  std::vector<std::vector<std::pair<std::uint32_t, std::uint64_t>>> mapOutput;

  /// I_l per keyblock (kSidr mode): maps the reduce waits for / fetches.
  std::vector<std::vector<std::uint32_t>> reduceDeps;

  std::vector<std::uint64_t> reduceInputBytes;   ///< per reduce, merged
  std::vector<std::uint64_t> reduceOutputBytes;  ///< per reduce, written

  double mapCpuSecondsPerByte = 0.0;
  double reduceCpuSecondsPerByte = 0.0;

  /// Sailfish semantics (paper section 5): keyblock assignment is
  /// deferred until every intermediate key exists, so no shuffle fetch
  /// may begin before the last map completes — the copy phase cannot
  /// overlap map execution (a STRENGTHENED barrier).
  bool deferFetchUntilAllMaps = false;

  /// Paper section 6 (future work): keep intermediate data volatile —
  /// maps skip the output spill to disk (the non-failure-case saving) —
  /// and recover from a reduce failure by re-executing just that
  /// keyblock's I_l map subset. kSidr mode only.
  bool volatileIntermediate = false;

  /// Keyblocks whose reduce fails once at merge completion (failure
  /// injection for the recovery experiment). kSidr mode only.
  std::vector<std::uint32_t> failOnceReduces;

  /// Maps whose execution fails once just before committing output
  /// (mirrors the engine's map-attempt failure injection, so
  /// bench_ablation_recovery can compare engine vs simulator at both
  /// failure sites). The failed attempt's slot is released and the map
  /// re-queued; works in every execution mode.
  std::vector<std::uint32_t> failOnceMaps;

  /// HOP / MapReduce Online semantics (paper section 5): reduces apply
  /// their function to the data fetched so far whenever the map phase
  /// crosses 25/50/75%, emitting ESTIMATES of the final output (not
  /// correct partial results). Each snapshot re-processes everything
  /// fetched so far. kGlobalBarrier mode only.
  bool hopEstimates = false;

  /// Fraction of maps reading their split from a local replica; the
  /// rest stream over the network (SciHadoop ~0.97; byte-oriented
  /// Hadoop over coordinate data much lower).
  double localityFraction = 0.97;

  std::vector<std::uint32_t> reducePriority;  ///< kSidr: schedule order
};

struct SimTaskTimes {
  double start = 0;
  double end = 0;
};

struct SimResult {
  std::vector<SimTaskTimes> maps;     ///< per map task
  std::vector<SimTaskTimes> reduces;  ///< per reduce task (end = commit)
  double lastMapEnd = 0;
  double firstResult = 0;  ///< earliest reduce commit
  double totalTime = 0;    ///< last reduce commit
  std::uint64_t shuffleConnections = 0;
  std::uint32_t mapsReExecuted = 0;  ///< recovery re-runs + failed-attempt retries
  std::uint32_t mapFailures = 0;     ///< injected map-attempt failures
  std::uint32_t reduceFailures = 0;  ///< injected reduce failures

  /// HOP estimate emissions: (fraction of maps complete, time at which
  /// EVERY reduce finished its snapshot over the data seen so far).
  std::vector<std::pair<double, double>> estimates;

  /// Per-attempt / per-phase spans in the SAME schema the real engine
  /// records (obs::Span; DESIGN.md section 13), on virtual lanes: map m
  /// on lane m, reduce kb on lane (1<<20)+kb, each fetch on its own
  /// lane above (2<<20). Timestamps are simulated seconds, so the same
  /// trace_check invariants (nesting, commit-before-reduce gating)
  /// apply verbatim to simulator output.
  obs::Trace trace;

  /// Times at which the k-th fraction of maps / reduces completed.
  std::vector<double> sortedMapEnds() const;
  std::vector<double> sortedReduceEnds() const;
};

class ClusterSim {
 public:
  ClusterSim(ClusterConfig config, SimJob job);

  SimResult run();

 private:
  struct Impl;
  ClusterConfig config_;
  SimJob job_;
};

}  // namespace sidr::sim
