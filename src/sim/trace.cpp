#include "sim/trace.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>
#include <unordered_map>

namespace sidr::sim {

CompletionSeries completionSeries(const std::vector<double>& sortedEnds,
                                  std::size_t maxPoints) {
  CompletionSeries s;
  const std::size_t n = sortedEnds.size();
  if (n == 0) return s;
  std::size_t step = std::max<std::size_t>(1, n / maxPoints);
  for (std::size_t i = 0; i < n; i += step) {
    s.times.push_back(sortedEnds[i]);
    s.fractions.push_back(static_cast<double>(i + 1) /
                          static_cast<double>(n));
  }
  if (s.times.back() != sortedEnds.back()) {
    s.times.push_back(sortedEnds.back());
    s.fractions.push_back(1.0);
  }
  return s;
}

double timeAtFraction(const std::vector<double>& sortedEnds,
                      double fraction) {
  if (sortedEnds.empty()) {
    throw std::invalid_argument("timeAtFraction: empty series");
  }
  if (fraction <= 0.0 || fraction > 1.0) {
    throw std::invalid_argument("timeAtFraction: fraction out of (0, 1]");
  }
  auto idx = static_cast<std::size_t>(
      std::ceil(fraction * static_cast<double>(sortedEnds.size())) - 1);
  return sortedEnds[std::min(idx, sortedEnds.size() - 1)];
}

void printSeriesCsv(std::ostream& os, const std::string& label,
                    const CompletionSeries& series) {
  for (std::size_t i = 0; i < series.times.size(); ++i) {
    os << label << "," << series.times[i] << "," << series.fractions[i]
       << "\n";
  }
}

FractionStats fractionStats(
    const std::vector<std::vector<double>>& sortedEndsPerRun,
    std::size_t numPoints) {
  FractionStats stats;
  if (sortedEndsPerRun.empty()) return stats;
  for (std::size_t p = 1; p <= numPoints; ++p) {
    double frac = static_cast<double>(p) / static_cast<double>(numPoints);
    double sum = 0;
    double sumSq = 0;
    for (const auto& run : sortedEndsPerRun) {
      double t = timeAtFraction(run, frac);
      sum += t;
      sumSq += t * t;
    }
    auto n = static_cast<double>(sortedEndsPerRun.size());
    double mean = sum / n;
    double var = std::max(0.0, sumSq / n - mean * mean);
    stats.fractions.push_back(frac);
    stats.meanTimes.push_back(mean);
    stats.stddevTimes.push_back(std::sqrt(var));
  }
  return stats;
}

std::vector<double> sortedAttemptEnds(const obs::Trace& trace,
                                      obs::TaskSide side) {
  // A task's completion time is the end of its last OK attempt; failed
  // attempts never complete the task (the engine and sim both re-run).
  std::unordered_map<std::uint32_t, double> lastOkEnd;
  for (const obs::Span& s : trace.spans) {
    if (s.phase != obs::Phase::kTaskAttempt || s.side != side) continue;
    if (s.outcome != obs::Outcome::kOk) continue;
    auto [it, inserted] = lastOkEnd.try_emplace(s.taskId, s.end);
    if (!inserted) it->second = std::max(it->second, s.end);
  }
  std::vector<double> ends;
  ends.reserve(lastOkEnd.size());
  for (const auto& [task, end] : lastOkEnd) ends.push_back(end);
  std::sort(ends.begin(), ends.end());
  return ends;
}

}  // namespace sidr::sim
