// A minimal HDFS model: files split into fixed-size blocks, each block
// replicated on several datanodes.
//
// SciHadoop/SIDR consume HDFS through exactly two questions, both
// answered here:
//   1. how big is a block? (drives input-split sizing: the paper's
//      348 GB / 128 MB -> 2781 splits), and
//   2. which hosts store the block backing this byte range? (drives the
//      locality-aware scheduling tree, paper section 3.3).
// Placement follows Hadoop 1.0 defaults: replica 1 on the writing node,
// replicas 2..k on distinct other nodes, chosen pseudo-randomly from a
// seeded generator so experiments are reproducible.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

namespace sidr::dfs {

using NodeId = std::uint32_t;
using FileId = std::uint32_t;

struct BlockLocation {
  std::uint64_t offset = 0;  ///< byte offset of the block within the file
  std::uint64_t length = 0;  ///< block length (last block may be short)
  std::vector<NodeId> replicas;
};

struct FileInfo {
  FileId id = 0;
  std::string name;
  std::uint64_t size = 0;
  std::uint64_t blockSize = 0;
  std::vector<BlockLocation> blocks;
};

class Namenode {
 public:
  /// A namenode managing `numDataNodes` datanodes. `seed` makes replica
  /// placement deterministic per experiment.
  Namenode(std::uint32_t numDataNodes, std::uint32_t replication = 3,
           std::uint64_t seed = 42);

  std::uint32_t numDataNodes() const noexcept { return numNodes_; }
  std::uint32_t replication() const noexcept { return replication_; }

  /// Registers a file and places its blocks. `writerNode` models the
  /// node that wrote the file (gets the first replica of every block);
  /// pass kNoWriter to rotate writers per block (bulk ingest).
  static constexpr NodeId kNoWriter = static_cast<NodeId>(-1);
  FileId addFile(const std::string& name, std::uint64_t size,
                 std::uint64_t blockSize, NodeId writerNode = kNoWriter);

  const FileInfo& file(FileId id) const;
  const FileInfo& fileByName(const std::string& name) const;

  /// The block containing byte `offset` of the file.
  const BlockLocation& blockAt(FileId id, std::uint64_t offset) const;

  /// Hosts holding the block that covers the midpoint of
  /// [offset, offset+length): Hadoop attributes a split's locality to
  /// the block holding the bulk of it.
  const std::vector<NodeId>& hostsForRange(FileId id, std::uint64_t offset,
                                           std::uint64_t length) const;

  /// True if `node` stores a replica of the block covering the range's
  /// midpoint (i.e. the range is node-local there).
  bool isLocal(FileId id, std::uint64_t offset, std::uint64_t length,
               NodeId node) const;

 private:
  std::vector<NodeId> placeReplicas(NodeId writer);

  std::uint32_t numNodes_;
  std::uint32_t replication_;
  std::mt19937_64 rng_;
  NodeId nextWriter_ = 0;
  std::vector<FileInfo> files_;
  std::unordered_map<std::string, FileId> byName_;
};

}  // namespace sidr::dfs
