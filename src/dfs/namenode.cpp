#include "dfs/namenode.hpp"

#include <algorithm>
#include <stdexcept>

namespace sidr::dfs {

Namenode::Namenode(std::uint32_t numDataNodes, std::uint32_t replication,
                   std::uint64_t seed)
    : numNodes_(numDataNodes),
      replication_(std::min(replication, numDataNodes)),
      rng_(seed) {
  if (numDataNodes == 0) {
    throw std::invalid_argument("Namenode: need at least one datanode");
  }
}

std::vector<NodeId> Namenode::placeReplicas(NodeId writer) {
  std::vector<NodeId> replicas;
  replicas.reserve(replication_);
  replicas.push_back(writer % numNodes_);
  while (replicas.size() < replication_) {
    auto candidate = static_cast<NodeId>(rng_() % numNodes_);
    if (std::find(replicas.begin(), replicas.end(), candidate) ==
        replicas.end()) {
      replicas.push_back(candidate);
    }
  }
  return replicas;
}

FileId Namenode::addFile(const std::string& name, std::uint64_t size,
                         std::uint64_t blockSize, NodeId writerNode) {
  if (blockSize == 0) {
    throw std::invalid_argument("Namenode::addFile: blockSize must be > 0");
  }
  if (byName_.contains(name)) {
    throw std::invalid_argument("Namenode::addFile: duplicate file " + name);
  }
  FileInfo info;
  info.id = static_cast<FileId>(files_.size());
  info.name = name;
  info.size = size;
  info.blockSize = blockSize;
  for (std::uint64_t off = 0; off < size; off += blockSize) {
    BlockLocation blk;
    blk.offset = off;
    blk.length = std::min(blockSize, size - off);
    NodeId writer =
        (writerNode == kNoWriter) ? nextWriter_++ : writerNode;
    blk.replicas = placeReplicas(writer);
    info.blocks.push_back(std::move(blk));
  }
  byName_.emplace(name, info.id);
  files_.push_back(std::move(info));
  return files_.back().id;
}

const FileInfo& Namenode::file(FileId id) const { return files_.at(id); }

const FileInfo& Namenode::fileByName(const std::string& name) const {
  auto it = byName_.find(name);
  if (it == byName_.end()) {
    throw std::invalid_argument("Namenode: unknown file " + name);
  }
  return files_.at(it->second);
}

const BlockLocation& Namenode::blockAt(FileId id, std::uint64_t offset) const {
  const FileInfo& info = file(id);
  if (offset >= info.size) {
    throw std::out_of_range("Namenode::blockAt: offset past end of file");
  }
  return info.blocks.at(offset / info.blockSize);
}

const std::vector<NodeId>& Namenode::hostsForRange(FileId id,
                                                   std::uint64_t offset,
                                                   std::uint64_t length) const {
  std::uint64_t mid = offset + (length > 0 ? (length - 1) / 2 : 0);
  return blockAt(id, mid).replicas;
}

bool Namenode::isLocal(FileId id, std::uint64_t offset, std::uint64_t length,
                       NodeId node) const {
  const auto& hosts = hostsForRange(id, offset, length);
  return std::find(hosts.begin(), hosts.end(), node) != hosts.end();
}

}  // namespace sidr::dfs
