#include "ndarray/region.hpp"

#include <algorithm>
#include <sstream>

namespace sidr::nd {

Region::Region(Coord corner, Coord shape)
    : corner_(corner), shape_(shape) {
  if (corner.rank() != shape.rank()) {
    throw std::invalid_argument("Region: corner/shape rank mismatch");
  }
  if (!shape.isValidShape()) {
    throw std::invalid_argument("Region: shape extents must be positive");
  }
}

Coord Region::last() const {
  Coord l = corner_;
  for (std::size_t d = 0; d < l.rank(); ++d) l[d] += shape_[d] - 1;
  return l;
}

bool Region::contains(const Coord& c) const noexcept {
  if (c.rank() != rank()) return false;
  for (std::size_t d = 0; d < rank(); ++d) {
    if (c[d] < corner_[d] || c[d] >= corner_[d] + shape_[d]) return false;
  }
  return true;
}

bool Region::containsRegion(const Region& other) const noexcept {
  if (other.rank() != rank()) return false;
  for (std::size_t d = 0; d < rank(); ++d) {
    if (other.corner_[d] < corner_[d]) return false;
    if (other.corner_[d] + other.shape_[d] > corner_[d] + shape_[d]) {
      return false;
    }
  }
  return true;
}

std::optional<Region> Region::intersect(const Region& other) const {
  if (other.rank() != rank()) return std::nullopt;
  Coord lo = corner_.max(other.corner_);
  Coord hi = end().min(other.end());
  Coord shape = Coord::zeros(rank());
  for (std::size_t d = 0; d < rank(); ++d) {
    shape[d] = hi[d] - lo[d];
    if (shape[d] <= 0) return std::nullopt;
  }
  return Region(lo, shape);
}

Index Region::linearOffsetOf(const Coord& c) const {
  return linearize(c.minus(corner_), shape_);
}

Coord Region::coordAtOffset(Index offset) const {
  return delinearize(offset, shape_).plus(corner_);
}

std::vector<Region> linearRangeToRegions(Index first, Index last,
                                         const Coord& shape) {
  std::vector<Region> out;
  if (first >= last) return out;
  const std::size_t rank = shape.rank();
  // trailing[d] = product of extents of dimensions after d.
  std::vector<Index> trailing(rank, 1);
  for (std::size_t d = rank - 1; d-- > 0;) {
    trailing[d] = trailing[d + 1] * shape[d + 1];
  }
  Index a = first;
  while (a < last) {
    Coord c = delinearize(a, shape);
    // The shallowest dimension whose whole trailing block we can take:
    // all deeper coordinates must be zero and the block must fit.
    std::size_t d = rank - 1;
    while (d > 0) {
      bool deeperZero = true;
      for (std::size_t e = d; e < rank; ++e) {
        if (c[e] != 0) {
          deeperZero = false;
          break;
        }
      }
      if (deeperZero && trailing[d - 1] <= last - a) {
        --d;
      } else {
        break;
      }
    }
    Index run = std::min((last - a) / trailing[d], shape[d] - c[d]);
    if (run <= 0) {
      throw std::logic_error("linearRangeToRegions: internal error");
    }
    Coord boxShape = Coord::ones(rank);
    boxShape[d] = run;
    for (std::size_t e = d + 1; e < rank; ++e) boxShape[e] = shape[e];
    out.emplace_back(c, boxShape);
    a += run * trailing[d];
  }
  return out;
}

std::string Region::toString() const {
  std::ostringstream os;
  os << "corner: " << corner_.toString() << " shape: " << shape_.toString();
  return os.str();
}

}  // namespace sidr::nd
