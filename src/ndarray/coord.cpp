#include "ndarray/coord.hpp"

#include <cctype>
#include <sstream>

namespace sidr::nd {

namespace {

void requireSameRank(const Coord& a, const Coord& b, const char* op) {
  if (a.rank() != b.rank()) {
    throw std::invalid_argument(std::string("Coord rank mismatch in ") + op);
  }
}

}  // namespace

Coord Coord::filled(std::size_t rank, Index fill) {
  if (rank > kMaxRank) throw std::length_error("Coord: rank exceeds kMaxRank");
  Coord c;
  c.rank_ = rank;
  for (std::size_t d = 0; d < rank; ++d) c.v_[d] = fill;
  return c;
}

Index Coord::volume() const noexcept {
  Index prod = 1;
  for (std::size_t d = 0; d < rank_; ++d) prod *= v_[d];
  return prod;
}

bool Coord::isValidShape() const noexcept {
  for (std::size_t d = 0; d < rank_; ++d) {
    if (v_[d] <= 0) return false;
  }
  return true;
}

Coord Coord::plus(const Coord& o) const {
  requireSameRank(*this, o, "plus");
  Coord r = *this;
  for (std::size_t d = 0; d < rank_; ++d) r.v_[d] += o.v_[d];
  return r;
}

Coord Coord::minus(const Coord& o) const {
  requireSameRank(*this, o, "minus");
  Coord r = *this;
  for (std::size_t d = 0; d < rank_; ++d) r.v_[d] -= o.v_[d];
  return r;
}

Coord Coord::dividedBy(const Coord& divisor) const {
  requireSameRank(*this, divisor, "dividedBy");
  Coord r = *this;
  for (std::size_t d = 0; d < rank_; ++d) {
    if (divisor.v_[d] <= 0) {
      throw std::invalid_argument("Coord::dividedBy: non-positive divisor");
    }
    // Floor division; coordinates handled here are non-negative, but keep
    // the floor semantics explicit for robustness with signed offsets.
    Index q = r.v_[d] / divisor.v_[d];
    if ((r.v_[d] % divisor.v_[d] != 0) && (r.v_[d] < 0)) --q;
    r.v_[d] = q;
  }
  return r;
}

Coord Coord::times(const Coord& o) const {
  requireSameRank(*this, o, "times");
  Coord r = *this;
  for (std::size_t d = 0; d < rank_; ++d) r.v_[d] *= o.v_[d];
  return r;
}

Coord Coord::min(const Coord& o) const {
  requireSameRank(*this, o, "min");
  Coord r = *this;
  for (std::size_t d = 0; d < rank_; ++d) {
    if (o.v_[d] < r.v_[d]) r.v_[d] = o.v_[d];
  }
  return r;
}

Coord Coord::max(const Coord& o) const {
  requireSameRank(*this, o, "max");
  Coord r = *this;
  for (std::size_t d = 0; d < rank_; ++d) {
    if (o.v_[d] > r.v_[d]) r.v_[d] = o.v_[d];
  }
  return r;
}

std::string Coord::toString() const {
  std::ostringstream os;
  os << '{';
  for (std::size_t d = 0; d < rank_; ++d) {
    if (d != 0) os << ", ";
    os << v_[d];
  }
  os << '}';
  return os.str();
}

Coord Coord::parse(const std::string& text) {
  std::size_t i = 0;
  auto skipSpace = [&] {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
  };
  skipSpace();
  if (i >= text.size() || text[i] != '{') {
    throw std::invalid_argument("Coord::parse: expected '{'");
  }
  ++i;
  Coord c;
  skipSpace();
  if (i < text.size() && text[i] == '}') {
    ++i;
    return c;
  }
  while (true) {
    skipSpace();
    std::size_t start = i;
    if (i < text.size() && (text[i] == '-' || text[i] == '+')) ++i;
    while (i < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i == start) throw std::invalid_argument("Coord::parse: expected int");
    if (c.rank_ >= kMaxRank) {
      throw std::length_error("Coord::parse: rank exceeds kMaxRank");
    }
    c.v_[c.rank_++] = std::stoll(text.substr(start, i - start));
    skipSpace();
    if (i >= text.size()) {
      throw std::invalid_argument("Coord::parse: unterminated");
    }
    if (text[i] == ',') {
      ++i;
      continue;
    }
    if (text[i] == '}') {
      ++i;
      return c;
    }
    throw std::invalid_argument("Coord::parse: expected ',' or '}'");
  }
}

std::uint64_t Coord::hash() const noexcept {
  // FNV-1a over the components plus the rank; stable across platforms.
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t x) {
    for (int b = 0; b < 8; ++b) {
      h ^= (x >> (b * 8)) & 0xffULL;
      h *= 1099511628211ULL;
    }
  };
  mix(static_cast<std::uint64_t>(rank_));
  for (std::size_t d = 0; d < rank_; ++d) {
    mix(static_cast<std::uint64_t>(v_[d]));
  }
  // splitmix64 finalizer: FNV alone leaves structure in the low bits for
  // patterned coordinates, which a modulo-based consumer would inherit.
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

Index linearize(const Coord& c, const Coord& shape) {
  requireSameRank(c, shape, "linearize");
  Index linear = 0;
  for (std::size_t d = 0; d < c.rank(); ++d) {
    linear = linear * shape[d] + c[d];
  }
  return linear;
}

Coord delinearize(Index linear, const Coord& shape) {
  Coord c = Coord::zeros(shape.rank());
  for (std::size_t d = shape.rank(); d-- > 0;) {
    c[d] = linear % shape[d];
    linear /= shape[d];
  }
  return c;
}

}  // namespace sidr::nd
