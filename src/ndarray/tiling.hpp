// Tiling of an n-dimensional space by a fixed tile shape.
//
// Two SIDR mechanisms are tilings in disguise:
//  * the extraction shape logically tiles the input keyspace K, each
//    instance becoming one intermediate key in K' (paper section 2.4.2);
//  * partition+ tiles the intermediate keyspace K' with a skew-bounded
//    shape and deals contiguous runs of instances to keyblocks
//    (paper section 3.1, figure 7).
// This class owns the shared geometry: the grid of tile instances, the
// clipped region each instance covers, and coordinate <-> instance maps.
#pragma once

#include "ndarray/region.hpp"

namespace sidr::nd {

class Tiling {
 public:
  Tiling() = default;

  /// Tiles the space `[0, spaceShape)` with `tileShape`. Edge tiles are
  /// clipped when extents do not divide evenly.
  /// Throws std::invalid_argument on rank mismatch or invalid shapes.
  Tiling(Coord spaceShape, Coord tileShape);

  const Coord& spaceShape() const noexcept { return space_; }
  const Coord& tileShape() const noexcept { return tile_; }

  /// Shape of the grid of tiles: ceil(space[d] / tile[d]) per dimension.
  const Coord& gridShape() const noexcept { return grid_; }

  /// Total number of tile instances.
  Index tileCount() const noexcept { return grid_.volume(); }

  /// Grid coordinate of the tile containing `c`.
  Coord tileOf(const Coord& c) const { return c.dividedBy(tile_); }

  /// Row-major linear index of the tile containing `c`.
  Index tileIndexOf(const Coord& c) const {
    return linearize(tileOf(c), grid_);
  }

  /// The (possibly clipped) region of space covered by grid tile `g`.
  Region tileRegion(const Coord& g) const;

  /// tileRegion() addressed by linear tile index.
  Region tileRegionAt(Index tileIndex) const {
    return tileRegion(delinearize(tileIndex, grid_));
  }

  /// Grid-space region of all tiles that `r` (a region of the underlying
  /// space) touches. Precondition: r lies within the space.
  Region tileRangeOf(const Region& r) const;

 private:
  Coord space_;
  Coord tile_;
  Coord grid_;
};

}  // namespace sidr::nd
