#include "ndarray/tiling.hpp"

namespace sidr::nd {

Tiling::Tiling(Coord spaceShape, Coord tileShape)
    : space_(spaceShape), tile_(tileShape) {
  if (space_.rank() != tile_.rank()) {
    throw std::invalid_argument("Tiling: rank mismatch");
  }
  if (!space_.isValidShape() || !tile_.isValidShape()) {
    throw std::invalid_argument("Tiling: shapes must be positive");
  }
  grid_ = Coord::zeros(space_.rank());
  for (std::size_t d = 0; d < space_.rank(); ++d) {
    grid_[d] = (space_[d] + tile_[d] - 1) / tile_[d];
  }
}

Region Tiling::tileRegion(const Coord& g) const {
  Coord corner = g.times(tile_);
  Coord shape = tile_;
  for (std::size_t d = 0; d < space_.rank(); ++d) {
    if (g[d] < 0 || g[d] >= grid_[d]) {
      throw std::out_of_range("Tiling::tileRegion: grid coord out of range");
    }
    if (corner[d] + shape[d] > space_[d]) shape[d] = space_[d] - corner[d];
  }
  return Region(corner, shape);
}

Region Tiling::tileRangeOf(const Region& r) const {
  Coord lo = tileOf(r.corner());
  Coord hi = tileOf(r.last());
  Coord shape = hi.minus(lo);
  for (std::size_t d = 0; d < shape.rank(); ++d) shape[d] += 1;
  return Region(lo, shape);
}

}  // namespace sidr::nd
