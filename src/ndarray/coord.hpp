// n-dimensional coordinate / shape type used throughout SIDR.
//
// Scientific file formats address data by logical coordinates (NetCDF,
// HDF5, ...); SciHadoop and SIDR keep every stage of the dataflow in
// coordinate space, so this small fixed-capacity vector is the key type
// of the whole system (map input keys, intermediate keys, shapes,
// extraction shapes, strides).
//
// Design notes:
//  * rank is bounded by kMaxRank (8) — real scientific datasets rarely
//    exceed 5-6 dimensions, and the inline array keeps keys cheap to
//    copy/hash, which matters for the partition micro-benchmark
//    (6.48 M key routings, paper section 4.5).
//  * Coord doubles as a shape (extent-per-dimension) and as a point.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <span>
#include <stdexcept>
#include <string>

namespace sidr::nd {

/// Signed index type for logical coordinates. Signed so that arithmetic
/// on differences of coordinates is well defined.
using Index = std::int64_t;

/// Maximum supported rank (number of dimensions).
inline constexpr std::size_t kMaxRank = 8;

/// An n-dimensional coordinate or shape with inline storage.
class Coord {
 public:
  /// Rank-0 coordinate (useful as "empty" sentinel).
  constexpr Coord() noexcept : v_{}, rank_(0) {}

  /// Construct from an explicit list of per-dimension values.
  /// Throws std::length_error if more than kMaxRank values are given.
  Coord(std::initializer_list<Index> values) : v_{}, rank_(values.size()) {
    if (values.size() > kMaxRank) {
      throw std::length_error("Coord: rank exceeds kMaxRank");
    }
    std::size_t i = 0;
    for (Index x : values) v_[i++] = x;
  }

  /// Construct from a span of values.
  explicit Coord(std::span<const Index> values) : v_{}, rank_(values.size()) {
    if (values.size() > kMaxRank) {
      throw std::length_error("Coord: rank exceeds kMaxRank");
    }
    for (std::size_t i = 0; i < values.size(); ++i) v_[i] = values[i];
  }

  /// A coordinate of the given rank with every component set to `fill`.
  static Coord filled(std::size_t rank, Index fill);

  /// A coordinate of the given rank with every component zero (an origin).
  static Coord zeros(std::size_t rank) { return filled(rank, 0); }

  /// A shape of the given rank with every component one.
  static Coord ones(std::size_t rank) { return filled(rank, 1); }

  std::size_t rank() const noexcept { return rank_; }
  bool empty() const noexcept { return rank_ == 0; }

  Index& operator[](std::size_t d) { return v_[d]; }
  Index operator[](std::size_t d) const { return v_[d]; }

  /// Bounds-checked element access.
  Index at(std::size_t d) const {
    if (d >= rank_) throw std::out_of_range("Coord::at");
    return v_[d];
  }

  std::span<const Index> values() const noexcept { return {v_.data(), rank_}; }

  const Index* begin() const noexcept { return v_.data(); }
  const Index* end() const noexcept { return v_.data() + rank_; }
  Index* begin() noexcept { return v_.data(); }
  Index* end() noexcept { return v_.data() + rank_; }

  /// Product of all components. For a shape this is the element count
  /// (volume). Rank-0 has volume 1 by convention (empty product).
  Index volume() const noexcept;

  /// True when every component is strictly positive (a valid shape).
  bool isValidShape() const noexcept;

  /// Component-wise addition; ranks must match.
  Coord plus(const Coord& o) const;
  /// Component-wise subtraction; ranks must match.
  Coord minus(const Coord& o) const;
  /// Component-wise floor division by a positive divisor shape.
  Coord dividedBy(const Coord& divisor) const;
  /// Component-wise multiplication.
  Coord times(const Coord& o) const;
  /// Component-wise minimum.
  Coord min(const Coord& o) const;
  /// Component-wise maximum.
  Coord max(const Coord& o) const;

  /// Lexicographic comparison (row-major order when shapes are equal).
  friend auto operator<=>(const Coord& a, const Coord& b) = default;

  /// Human-readable "{a, b, c}" rendering (matches the paper's notation).
  std::string toString() const;

  /// Parses the toString() format, e.g. "{7200, 360, 720, 50}".
  /// Throws std::invalid_argument on malformed input.
  static Coord parse(const std::string& text);

  /// 64-bit hash of the coordinate contents; mixes all components.
  std::uint64_t hash() const noexcept;

 private:
  std::array<Index, kMaxRank> v_;
  std::size_t rank_;
};

/// Row-major linearization of `c` within an enclosing `shape`; this is
/// the canonical total order on keys used by sorting, merging and by
/// Hadoop's modulo partitioner over coordinate keys.
/// Precondition: 0 <= c[d] < shape[d] for all d, ranks equal.
Index linearize(const Coord& c, const Coord& shape);

/// Inverse of linearize().
Coord delinearize(Index linear, const Coord& shape);

}  // namespace sidr::nd

template <>
struct std::hash<sidr::nd::Coord> {
  std::size_t operator()(const sidr::nd::Coord& c) const noexcept {
    return static_cast<std::size_t>(c.hash());
  }
};
