// Axis-aligned hyper-rectangular regions of a logical keyspace.
//
// SciHadoop specifies its units of work as (corner, shape) pairs in the
// input's coordinate space; SIDR additionally reasons about regions of
// the intermediate keyspace K'. Region is that (corner, shape) pair plus
// the geometric algebra the router needs: containment, intersection,
// iteration and row-major linearization.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ndarray/coord.hpp"

namespace sidr::nd {

/// A half-open axis-aligned box: coordinates c with
/// corner[d] <= c[d] < corner[d] + shape[d] for every dimension d.
class Region {
 public:
  Region() = default;

  /// Throws std::invalid_argument if ranks differ or shape has a
  /// non-positive extent.
  Region(Coord corner, Coord shape);

  /// The region covering an entire space of the given shape (origin 0).
  static Region wholeSpace(const Coord& shape) {
    return Region(Coord::zeros(shape.rank()), shape);
  }

  const Coord& corner() const noexcept { return corner_; }
  const Coord& shape() const noexcept { return shape_; }
  std::size_t rank() const noexcept { return corner_.rank(); }

  /// Number of coordinates in the region.
  Index volume() const noexcept { return shape_.volume(); }

  /// Exclusive upper corner: corner + shape.
  Coord end() const { return corner_.plus(shape_); }

  /// Inclusive last coordinate: corner + shape - 1 per dimension.
  Coord last() const;

  bool contains(const Coord& c) const noexcept;

  /// True when `other` lies entirely within this region.
  bool containsRegion(const Region& other) const noexcept;

  /// Geometric intersection; nullopt when the regions do not overlap.
  std::optional<Region> intersect(const Region& other) const;

  bool overlaps(const Region& other) const { return intersect(other).has_value(); }

  /// Row-major rank of `c` among the region's coordinates, in [0, volume).
  /// Precondition: contains(c).
  Index linearOffsetOf(const Coord& c) const;

  /// Inverse of linearOffsetOf().
  Coord coordAtOffset(Index offset) const;

  friend bool operator==(const Region& a, const Region& b) = default;

  std::string toString() const;

 private:
  Coord corner_;
  Coord shape_;
};

/// Decomposes the row-major linear index range [first, last) of a space
/// of shape `shape` into a minimal greedy set of axis-aligned boxes
/// (at most 2*rank+1). Used to give linearly-contiguous keyblocks and
/// byte-range input splits rectangular geometry.
std::vector<Region> linearRangeToRegions(Index first, Index last,
                                         const Coord& shape);

/// Forward iteration over every coordinate of a region in row-major
/// order (last dimension varies fastest). Usage:
///   for (RegionCursor cur(r); cur.valid(); cur.next()) use(cur.coord());
class RegionCursor {
 public:
  explicit RegionCursor(const Region& region)
      : region_(region), coord_(region.corner()), valid_(region.volume() > 0) {}

  bool valid() const noexcept { return valid_; }
  const Coord& coord() const noexcept { return coord_; }

  void next() noexcept {
    for (std::size_t d = region_.rank(); d-- > 0;) {
      if (++coord_[d] < region_.corner()[d] + region_.shape()[d]) return;
      coord_[d] = region_.corner()[d];
    }
    valid_ = false;
  }

  /// Coordinates left in the cursor's current row: positions reachable by
  /// incrementing only the innermost dimension (itself included).
  /// Precondition: valid() and rank >= 1.
  Index rowRemaining() const noexcept {
    const std::size_t last = region_.rank() - 1;
    return region_.corner()[last] + region_.shape()[last] - coord_[last];
  }

  /// Advances `k` positions along the innermost dimension, rolling over
  /// to the next row when the current one is exhausted — the bulk
  /// equivalent of `k` next() calls that never leave the row. Lets batch
  /// record readers consume whole row runs without per-element carry
  /// checks. Precondition: valid() and 1 <= k <= rowRemaining().
  void advanceInRow(Index k) noexcept {
    const std::size_t last = region_.rank() - 1;
    coord_[last] += k;
    if (coord_[last] < region_.corner()[last] + region_.shape()[last]) return;
    coord_[last] = region_.corner()[last];
    for (std::size_t d = last; d-- > 0;) {
      if (++coord_[d] < region_.corner()[d] + region_.shape()[d]) return;
      coord_[d] = region_.corner()[d];
    }
    valid_ = false;
  }

 private:
  Region region_;
  Coord coord_;
  bool valid_;
};

}  // namespace sidr::nd
